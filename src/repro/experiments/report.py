"""Markdown summary of a results directory.

After ``repro-experiments run ... --outdir results`` has produced tidy
CSVs, :func:`summarize_results` compiles a compact markdown report: one
section per figure and scale, with per-series minima/maxima and the
figure's key comparisons — a quick artifact to attach to a reproduction
log (EXPERIMENTS.md is the curated version of the same information).
"""

from __future__ import annotations

import glob
import os
import re
from typing import List, Optional

from repro.experiments.config import FigureData
from repro.experiments.io import read_csv

__all__ = ["summarize_results", "write_report"]

_NAME_RE = re.compile(r"(?P<fid>[a-z0-9]+)_(?P<scale>paper|medium|ci)\.csv$")


def _series_line(label: str, fig: FigureData) -> str:
    s = fig.series[label]
    return f"| {label} | {min(s.mean):.3f} | {max(s.mean):.3f} | {len(s)} |"


def summarize_results(directory: str) -> str:
    """Build the markdown report for every figure CSV under *directory*."""
    paths = sorted(glob.glob(os.path.join(directory, "*.csv")))
    entries = []
    for path in paths:
        match = _NAME_RE.search(os.path.basename(path))
        if not match:
            continue
        try:
            fig = read_csv(path)
        except ValueError:
            continue
        entries.append((match.group("fid"), match.group("scale"), fig))
    if not entries:
        raise ValueError(f"no figure CSVs found under {directory!r}")

    lines: List[str] = ["# Results summary", ""]
    order = {"paper": 0, "medium": 1, "ci": 2}
    entries.sort(key=lambda e: (e[0], order.get(e[1], 9)))
    for fid, scale, fig in entries:
        lines.append(f"## {fid} ({scale})")
        lines.append("")
        lines.append("| series | min | max | points |")
        lines.append("|---|---|---|---|")
        for label in fig.series:
            lines.append(_series_line(label, fig))
        best = _headline(fig)
        if best:
            lines.append("")
            lines.append(best)
        lines.append("")
    return "\n".join(lines)


def _headline(fig: FigureData) -> Optional[str]:
    """One-sentence takeaway when the figure has a recognizable shape."""
    labels = set(fig.series)
    two_phase = next((l for l in labels if l.endswith("2Phases")), None)
    random_label = next((l for l in labels if l.startswith("Random")), None)
    if two_phase and random_label:
        tp = fig.series[two_phase]
        rd = fig.series[random_label]
        common = sorted(set(tp.x) & set(rd.x))
        if common:
            x = common[-1]
            tp_v = tp.mean[tp.x.index(x)]
            rd_v = rd.mean[rd.x.index(x)]
            if tp_v > 0:
                return (
                    f"At the last common point (x = {x:g}): {two_phase} = {tp_v:.3f}, "
                    f"{random_label} = {rd_v:.3f} ({rd_v / tp_v:.2f}x)."
                )
    if "Analysis" in labels and two_phase:
        return None
    return None


def write_report(directory: str, path: str) -> str:
    """Write the report for *directory* to *path*; returns the path."""
    text = summarize_results(directory)
    out_dir = os.path.dirname(path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(text)
    return path
