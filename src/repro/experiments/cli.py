"""``repro-experiments`` — regenerate the paper's figures from the shell.

Examples::

    repro-experiments list
    repro-experiments run fig01 fig06 --scale ci --outdir results
    repro-experiments run all --scale medium --seed 7
    repro-experiments run all --scale paper --outdir results --cache cache --resume

``--cache DIR`` memoizes every replicate cell in a content-addressed
:class:`~repro.store.cache.ResultStore`; ``--resume`` additionally skips
figures whose CSV was already produced by an earlier (possibly killed) run
with the same scale and seed.  Cached or not, outputs are bit-identical.
See docs/CACHING.md.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.config import SCALES
from repro.experiments.figures import FIGURES, generate
from repro.experiments.io import render_figure, write_csv
from repro.obs.profile import wall_time
from repro.store.cache import ResultStore
from repro.store.orchestrator import SweepOrchestrator

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-experiments`` argument parser (exposed for the docs tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Beaumont & Marchal, HPDC'14.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available figure ids")

    run = sub.add_parser("run", help="run one or more figures")
    run.add_argument(
        "figures",
        nargs="+",
        help=f"figure ids ({', '.join(sorted(FIGURES))}) or 'all'",
    )
    run.add_argument("--scale", choices=SCALES, default="ci", help="experiment scale (default: ci)")
    run.add_argument("--seed", type=int, default=0, help="top-level RNG seed (default: 0)")
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the replicate sweeps: 1 = serial (default), 0 = one per CPU;"
        " results are bit-identical for every worker count",
    )
    run.add_argument("--outdir", default=None, help="write tidy CSVs into this directory")
    run.add_argument("--svg", action="store_true", help="also write an SVG chart per figure (needs --outdir)")
    run.add_argument("--quiet", action="store_true", help="suppress the terminal rendering")
    run.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="memoize replicate cells in a content-addressed store at DIR"
        " (created if missing); outputs are bit-identical with or without it",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="skip figures whose CSV a previous run with this scale/seed already"
        " wrote (needs --cache and --outdir; CSVs are checksum-verified)",
    )
    run.add_argument(
        "--workers-external",
        action="store_true",
        help="act as one of N independent sweep workers sharing --cache: claim"
        " unclaimed cells through the store (stealing stale claims of dead"
        " peers), then assemble the figure from cache — byte-identical to a"
        " single-process run; see docs/DISTRIBUTED.md",
    )
    run.add_argument(
        "--claim-stale-after",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds without a heartbeat before a peer's claim is presumed"
        " dead and stolen (default: 30)",
    )

    gantt = sub.add_parser("gantt", help="simulate one strategy and print an ASCII Gantt chart")
    gantt.add_argument("strategy", help="strategy name (see repro.strategy_names())")
    gantt.add_argument("-n", type=int, default=40, help="blocks per dimension (default: 40)")
    gantt.add_argument("-p", type=int, default=10, help="number of workers (default: 10)")
    gantt.add_argument("--seed", type=int, default=0, help="RNG seed")
    gantt.add_argument("--width", type=int, default=72, help="chart width in characters")

    beta = sub.add_parser("beta", help="compute the optimal two-phase threshold beta")
    beta.add_argument("kernel", choices=("outer", "matrix"), help="which kernel")
    beta.add_argument("-n", type=int, required=True, help="blocks per dimension")
    beta.add_argument("-p", type=int, required=True, help="number of workers")
    beta.add_argument(
        "--speeds",
        type=float,
        nargs="*",
        default=None,
        help="explicit worker speeds (defaults to the speed-agnostic homogeneous beta)",
    )

    report = sub.add_parser("report", help="summarize a results directory as markdown")
    report.add_argument("directory", help="directory holding figure CSVs")
    report.add_argument("-o", "--output", default=None, help="write the report here instead of stdout")

    faults = sub.add_parser("faults", help="run the worker-churn sweep (figure flt01)")
    faults.add_argument("--scale", choices=SCALES, default="ci", help="experiment scale (default: ci)")
    faults.add_argument("--seed", type=int, default=0, help="top-level RNG seed (default: 0)")
    faults.add_argument("--outdir", default=None, help="write CSV (and optional SVG/JSON) into this directory")
    faults.add_argument("--svg", action="store_true", help="also write an SVG chart (needs --outdir)")
    faults.add_argument("--json", action="store_true", help="also write a JSON summary (needs --outdir)")
    faults.add_argument("--quiet", action="store_true", help="suppress the terminal rendering")
    faults.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="memoize churn cells in a content-addressed store at DIR",
    )
    faults.add_argument(
        "--resume",
        action="store_true",
        help="skip the sweep when a previous run already wrote its CSV"
        " (needs --cache and --outdir)",
    )
    return parser


def _open_store_and_orchestrator(
    args: argparse.Namespace,
) -> "tuple[Optional[ResultStore], Optional[SweepOrchestrator]]":
    """Resolve ``--cache``/``--resume`` into (store, orchestrator) or exit."""
    if args.cache is None:
        if args.resume:
            raise SystemExit("--resume requires --cache")
        return None, None
    if args.resume and not args.outdir:
        raise SystemExit("--resume requires --outdir (it verifies written CSVs)")
    store = ResultStore(args.cache)
    # Manifests are recorded whenever they can be (cache + outdir), so a
    # plain cached run is already resumable; --resume only enables skipping.
    orch = SweepOrchestrator(store, scale=args.scale, seed=args.seed) if args.outdir else None
    return store, orch


def _drain_external(
    args: argparse.Namespace,
    figure_ids: List[str],
    store: ResultStore,
    orch: Optional[SweepOrchestrator],
) -> None:
    """Claim-and-compute every figure's cold cells as one external worker.

    After this returns the store holds every planned cell (computed here,
    by a peer, or stolen from a dead peer), so the normal per-figure loop
    below assembles the CSVs entirely from cache hits.
    """
    from repro.experiments.external import drain_figure
    from repro.store.claims import ClaimRegistry
    from repro.store.journal import Journal

    registry = ClaimRegistry(store, stale_after=args.claim_stale_after)
    journal = Journal(store)
    for fid in figure_ids:
        stats = drain_figure(
            fid,
            scale=args.scale,
            seed=args.seed,
            store=store,
            claims=registry,
            journal=journal,
            orchestrator=orch,
            workers=args.workers,
        )
        print(
            f"   [{fid} drained as {registry.owner}: {stats.computed} computed,"
            f" {stats.cached} from peers/cache, {registry.counts['stolen']} stolen]"
        )


def _print_cache_summary(store: ResultStore) -> None:
    """One-line hit/miss report after a cached run."""
    counts = store.counts
    rate = counts.hit_rate()
    rate_text = "n/a" if rate is None else f"{100.0 * rate:.0f}%"
    print(
        f"   [cache: {counts.hits} hits, {counts.misses} misses, "
        f"{counts.puts} puts, {counts.corrupt} corrupt — hit rate {rate_text}]"
    )


def _resolve_figures(requested: List[str]) -> List[str]:
    if "all" in requested:
        return sorted(FIGURES)
    unknown = [f for f in requested if f not in FIGURES]
    if unknown:
        raise SystemExit(f"unknown figure id(s): {', '.join(unknown)}; available: {', '.join(sorted(FIGURES))}")
    return requested


def _run_gantt(args: argparse.Namespace) -> int:
    from repro.core.analysis.lower_bounds import lower_bound
    from repro.core.strategies.registry import make_strategy
    from repro.platform.platform import Platform
    from repro.platform.speeds import uniform_speeds
    from repro.simulator.engine import simulate
    from repro.simulator.gantt import ascii_gantt

    platform = Platform(uniform_speeds(args.p, 10, 100, rng=args.seed))
    strategy = make_strategy(args.strategy, args.n)
    result = simulate(strategy, platform, rng=args.seed + 1, collect_trace=True)
    print(ascii_gantt(result, width=args.width))
    lb = lower_bound(strategy.kernel, platform.relative_speeds, args.n)
    print(f"communication: {result.total_blocks} blocks = {result.normalized(lb):.3f} x lower bound")
    return 0


def _run_beta(args: argparse.Namespace) -> int:
    import math

    import numpy as np

    from repro.core.analysis.beta import agnostic_beta
    from repro.core.analysis.matrix import matrix_total_ratio, optimal_matrix_beta
    from repro.core.analysis.outer import optimal_outer_beta, outer_total_ratio

    if args.speeds:
        speeds = np.asarray(args.speeds, dtype=float)
        if speeds.size != args.p:
            raise SystemExit(f"expected {args.p} speeds, got {speeds.size}")
        rel = speeds / speeds.sum()
        beta = optimal_outer_beta(rel, args.n) if args.kernel == "outer" else optimal_matrix_beta(rel, args.n)
        source = "tuned to the given speeds"
    else:
        rel = np.full(args.p, 1.0 / args.p)
        beta = agnostic_beta(args.kernel, args.p, args.n)
        source = "speed-agnostic (homogeneous, Section 3.6)"
    ratio = outer_total_ratio(beta, rel, args.n) if args.kernel == "outer" else matrix_total_ratio(beta, rel, args.n)
    total = args.n**2 if args.kernel == "outer" else args.n**3
    threshold = round(math.exp(-beta) * total)
    print(f"beta* = {beta:.4f}  ({source})")
    print(f"switch to phase 2 when {threshold} of {total} tasks remain "
          f"({100 * (1 - math.exp(-beta)):.1f}% done)")
    print(f"predicted communication: {ratio:.3f} x lower bound")
    return 0


def _run_faults(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.faults import churn_summary, flt01

    store, orch = _open_store_and_orchestrator(args)
    csv_path = os.path.join(args.outdir, f"flt01_{args.scale}.csv") if args.outdir else None
    if args.resume and orch is not None and csv_path is not None and orch.completed_csv("flt01", csv_path):
        print(f"   [flt01 already complete: {csv_path} (resume)]")
        return 0
    start = wall_time()
    fig = flt01(scale=args.scale, seed=args.seed, cache=store)
    elapsed = wall_time() - start
    if not args.quiet:
        print(render_figure(fig))
        print(f"   [flt01 generated in {elapsed:.1f}s at scale={args.scale}]\n")
    if args.outdir:
        path = write_csv(fig, os.path.join(args.outdir, f"flt01_{args.scale}.csv"))
        print(f"   wrote {path}")
        if orch is not None:
            orch.mark_done("flt01", path)
        if args.svg:
            from repro.experiments.svgplot import write_svg

            svg_path = write_svg(fig, os.path.join(args.outdir, f"flt01_{args.scale}.svg"))
            print(f"   wrote {svg_path}")
        if args.json:
            json_path = os.path.join(args.outdir, f"flt01_{args.scale}.json")
            with open(json_path, "w", encoding="utf-8") as fh:
                json.dump(churn_summary(fig), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"   wrote {json_path}")
    elif args.svg or args.json:
        raise SystemExit("--svg/--json require --outdir")
    if store is not None:
        _print_cache_summary(store)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-experiments``; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "gantt":
        return _run_gantt(args)

    if args.command == "beta":
        return _run_beta(args)

    if args.command == "report":
        from repro.experiments.report import summarize_results, write_report

        if args.output:
            print(f"wrote {write_report(args.directory, args.output)}")
        else:
            print(summarize_results(args.directory))
        return 0

    if args.command == "faults":
        return _run_faults(args)

    if args.command == "list":
        for fid in sorted(FIGURES):
            doc = (FIGURES[fid].__doc__ or "").strip().splitlines()[0]
            print(f"{fid:8s} {doc}")
        return 0

    figure_ids = _resolve_figures(args.figures)
    store, orch = _open_store_and_orchestrator(args)
    if args.workers_external:
        if store is None:
            raise SystemExit("--workers-external requires --cache")
        _drain_external(args, figure_ids, store, orch)
    for fid in figure_ids:
        csv_path = os.path.join(args.outdir, f"{fid}_{args.scale}.csv") if args.outdir else None
        if args.resume and orch is not None and csv_path is not None and orch.completed_csv(fid, csv_path):
            print(f"   [{fid} already complete: {csv_path} (resume)]")
            continue
        start = wall_time()
        fig = generate(fid, scale=args.scale, seed=args.seed, workers=args.workers, cache=store)
        elapsed = wall_time() - start
        if not args.quiet:
            print(render_figure(fig))
            print(f"   [{fid} generated in {elapsed:.1f}s at scale={args.scale}]\n")
        if args.outdir:
            path = write_csv(fig, os.path.join(args.outdir, f"{fid}_{args.scale}.csv"))
            print(f"   wrote {path}")
            if orch is not None:
                orch.mark_done(fid, path)
            if args.svg:
                from repro.experiments.svgplot import write_svg

                svg_path = write_svg(fig, os.path.join(args.outdir, f"{fid}_{args.scale}.svg"))
                print(f"   wrote {svg_path}")
    if store is not None:
        _print_cache_summary(store)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
