"""``repro-experiments`` — regenerate the paper's figures from the shell.

Examples::

    repro-experiments list
    repro-experiments run fig01 fig06 --scale ci --outdir results
    repro-experiments run all --scale medium --seed 7
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.config import SCALES
from repro.experiments.figures import FIGURES, generate
from repro.experiments.io import render_figure, write_csv
from repro.obs.profile import wall_time

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Beaumont & Marchal, HPDC'14.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available figure ids")

    run = sub.add_parser("run", help="run one or more figures")
    run.add_argument(
        "figures",
        nargs="+",
        help=f"figure ids ({', '.join(sorted(FIGURES))}) or 'all'",
    )
    run.add_argument("--scale", choices=SCALES, default="ci", help="experiment scale (default: ci)")
    run.add_argument("--seed", type=int, default=0, help="top-level RNG seed (default: 0)")
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the replicate sweeps: 1 = serial (default), 0 = one per CPU;"
        " results are bit-identical for every worker count",
    )
    run.add_argument("--outdir", default=None, help="write tidy CSVs into this directory")
    run.add_argument("--svg", action="store_true", help="also write an SVG chart per figure (needs --outdir)")
    run.add_argument("--quiet", action="store_true", help="suppress the terminal rendering")

    gantt = sub.add_parser("gantt", help="simulate one strategy and print an ASCII Gantt chart")
    gantt.add_argument("strategy", help="strategy name (see repro.strategy_names())")
    gantt.add_argument("-n", type=int, default=40, help="blocks per dimension (default: 40)")
    gantt.add_argument("-p", type=int, default=10, help="number of workers (default: 10)")
    gantt.add_argument("--seed", type=int, default=0, help="RNG seed")
    gantt.add_argument("--width", type=int, default=72, help="chart width in characters")

    beta = sub.add_parser("beta", help="compute the optimal two-phase threshold beta")
    beta.add_argument("kernel", choices=("outer", "matrix"), help="which kernel")
    beta.add_argument("-n", type=int, required=True, help="blocks per dimension")
    beta.add_argument("-p", type=int, required=True, help="number of workers")
    beta.add_argument(
        "--speeds",
        type=float,
        nargs="*",
        default=None,
        help="explicit worker speeds (defaults to the speed-agnostic homogeneous beta)",
    )

    report = sub.add_parser("report", help="summarize a results directory as markdown")
    report.add_argument("directory", help="directory holding figure CSVs")
    report.add_argument("-o", "--output", default=None, help="write the report here instead of stdout")

    faults = sub.add_parser("faults", help="run the worker-churn sweep (figure flt01)")
    faults.add_argument("--scale", choices=SCALES, default="ci", help="experiment scale (default: ci)")
    faults.add_argument("--seed", type=int, default=0, help="top-level RNG seed (default: 0)")
    faults.add_argument("--outdir", default=None, help="write CSV (and optional SVG/JSON) into this directory")
    faults.add_argument("--svg", action="store_true", help="also write an SVG chart (needs --outdir)")
    faults.add_argument("--json", action="store_true", help="also write a JSON summary (needs --outdir)")
    faults.add_argument("--quiet", action="store_true", help="suppress the terminal rendering")
    return parser


def _resolve_figures(requested: List[str]) -> List[str]:
    if "all" in requested:
        return sorted(FIGURES)
    unknown = [f for f in requested if f not in FIGURES]
    if unknown:
        raise SystemExit(f"unknown figure id(s): {', '.join(unknown)}; available: {', '.join(sorted(FIGURES))}")
    return requested


def _run_gantt(args: argparse.Namespace) -> int:
    from repro.core.analysis.lower_bounds import lower_bound
    from repro.core.strategies.registry import make_strategy
    from repro.platform.platform import Platform
    from repro.platform.speeds import uniform_speeds
    from repro.simulator.engine import simulate
    from repro.simulator.gantt import ascii_gantt

    platform = Platform(uniform_speeds(args.p, 10, 100, rng=args.seed))
    strategy = make_strategy(args.strategy, args.n)
    result = simulate(strategy, platform, rng=args.seed + 1, collect_trace=True)
    print(ascii_gantt(result, width=args.width))
    lb = lower_bound(strategy.kernel, platform.relative_speeds, args.n)
    print(f"communication: {result.total_blocks} blocks = {result.normalized(lb):.3f} x lower bound")
    return 0


def _run_beta(args: argparse.Namespace) -> int:
    import math

    import numpy as np

    from repro.core.analysis.beta import agnostic_beta
    from repro.core.analysis.matrix import matrix_total_ratio, optimal_matrix_beta
    from repro.core.analysis.outer import optimal_outer_beta, outer_total_ratio

    if args.speeds:
        speeds = np.asarray(args.speeds, dtype=float)
        if speeds.size != args.p:
            raise SystemExit(f"expected {args.p} speeds, got {speeds.size}")
        rel = speeds / speeds.sum()
        beta = optimal_outer_beta(rel, args.n) if args.kernel == "outer" else optimal_matrix_beta(rel, args.n)
        source = "tuned to the given speeds"
    else:
        rel = np.full(args.p, 1.0 / args.p)
        beta = agnostic_beta(args.kernel, args.p, args.n)
        source = "speed-agnostic (homogeneous, Section 3.6)"
    ratio = outer_total_ratio(beta, rel, args.n) if args.kernel == "outer" else matrix_total_ratio(beta, rel, args.n)
    total = args.n**2 if args.kernel == "outer" else args.n**3
    threshold = round(math.exp(-beta) * total)
    print(f"beta* = {beta:.4f}  ({source})")
    print(f"switch to phase 2 when {threshold} of {total} tasks remain "
          f"({100 * (1 - math.exp(-beta)):.1f}% done)")
    print(f"predicted communication: {ratio:.3f} x lower bound")
    return 0


def _run_faults(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.faults import churn_summary, flt01

    start = wall_time()
    fig = flt01(scale=args.scale, seed=args.seed)
    elapsed = wall_time() - start
    if not args.quiet:
        print(render_figure(fig))
        print(f"   [flt01 generated in {elapsed:.1f}s at scale={args.scale}]\n")
    if args.outdir:
        path = write_csv(fig, os.path.join(args.outdir, f"flt01_{args.scale}.csv"))
        print(f"   wrote {path}")
        if args.svg:
            from repro.experiments.svgplot import write_svg

            svg_path = write_svg(fig, os.path.join(args.outdir, f"flt01_{args.scale}.svg"))
            print(f"   wrote {svg_path}")
        if args.json:
            json_path = os.path.join(args.outdir, f"flt01_{args.scale}.json")
            with open(json_path, "w", encoding="utf-8") as fh:
                json.dump(churn_summary(fig), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"   wrote {json_path}")
    elif args.svg or args.json:
        raise SystemExit("--svg/--json require --outdir")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "gantt":
        return _run_gantt(args)

    if args.command == "beta":
        return _run_beta(args)

    if args.command == "report":
        from repro.experiments.report import summarize_results, write_report

        if args.output:
            print(f"wrote {write_report(args.directory, args.output)}")
        else:
            print(summarize_results(args.directory))
        return 0

    if args.command == "faults":
        return _run_faults(args)

    if args.command == "list":
        for fid in sorted(FIGURES):
            doc = (FIGURES[fid].__doc__ or "").strip().splitlines()[0]
            print(f"{fid:8s} {doc}")
        return 0

    figure_ids = _resolve_figures(args.figures)
    for fid in figure_ids:
        start = wall_time()
        fig = generate(fid, scale=args.scale, seed=args.seed, workers=args.workers)
        elapsed = wall_time() - start
        if not args.quiet:
            print(render_figure(fig))
            print(f"   [{fid} generated in {elapsed:.1f}s at scale={args.scale}]\n")
        if args.outdir:
            path = write_csv(fig, os.path.join(args.outdir, f"{fid}_{args.scale}.csv"))
            print(f"   wrote {path}")
            if args.svg:
                from repro.experiments.svgplot import write_svg

                svg_path = write_svg(fig, os.path.join(args.outdir, f"{fid}_{args.scale}.svg"))
                print(f"   wrote {svg_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
