"""Process-parallel replicate execution for the experiment runner.

The paper's figures each average 10-50 independent simulations; the
repetitions share nothing but a top-level seed, which makes the replicate
dimension embarrassingly parallel.  This module distributes repetitions
over a :class:`~concurrent.futures.ProcessPoolExecutor` while staying
**bit-identical** to the serial loop in
:func:`repro.experiments.runner.average_normalized_comm` for every worker
count:

* each repetition's RNG stream is pre-spawned in the parent via
  :func:`repro.utils.rng.spawn_seed_sequences`, so the stream a repetition
  consumes does not depend on which process runs it;
* per-repetition values are collected back **in repetition order** and
  folded through the same Welford accumulator the serial path uses, so the
  floating-point aggregation order is identical too.

Dispatch is chunked: repetitions are grouped into one contiguous index
chunk per worker, so each process pays its startup and import cost against
``reps / workers`` repetitions rather than one.  Two transports exist:

* picklable jobs (the ``*Spec`` classes below always are) go to a **warm
  pool** — a persistent :class:`~concurrent.futures.ProcessPoolExecutor`
  kept alive across calls, so a bench loop or sweep pays process startup
  once, not per cell; the job is pickled once per chunk;
* non-picklable jobs (arbitrary closures, like the ones the figure
  drivers build) fall back to fork transport on ``fork`` platforms: the
  :class:`RepJob` is published in a module global before a cold pool is
  created, so forked workers inherit it and only chunk indices cross the
  process boundary.

When neither transport is usable (no multiprocessing support, a broken
pool, or a non-picklable job on a spawn-only platform) the call silently
degrades to the serial path, preserving results.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from itertools import repeat
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.strategies.base import Strategy
from repro.core.strategies.registry import make_strategy
from repro.experiments.runner import (
    PlatformFactory,
    StrategyFactory,
    _batch_outcomes,
    _rep_normalized_comm,
    _should_vectorize,
)
from repro.obs.sink import MetricsSink, RecordingSink
from repro.platform.platform import Platform
from repro.store.cache import ResultStore
from repro.store.cells import load_cell, replicate_cell_key, save_cell
from repro.platform.speeds import (
    SCENARIO_NAMES,
    SpeedModel,
    heterogeneity_speeds,
    make_scenario,
    uniform_speeds,
)
from repro.utils.rng import SeedLike, as_generator, spawn_seed_sequences
from repro.utils.stats import RunningStats, Summary
from repro.utils.validation import check_positive_int, check_speeds

__all__ = [
    "CellRequest",
    "CellResult",
    "FixedPlatformSpec",
    "HeterogeneityPlatformSpec",
    "RepJob",
    "RepOutcome",
    "ScenarioPlatformSpec",
    "StrategySpec",
    "UniformPlatformSpec",
    "parallel_average_normalized_comm",
    "resolve_workers",
    "run_cells",
    "shutdown_pool",
]


# ---------------------------------------------------------------------------
# Picklable factory specs
# ---------------------------------------------------------------------------


class StrategySpec:
    """Picklable :data:`~repro.experiments.runner.StrategyFactory`.

    Calling the spec builds ``make_strategy(name, n, **kwargs)``; because it
    carries only the registry name and plain arguments, it round-trips
    through ``pickle`` and can therefore cross process boundaries on
    spawn-only platforms where closures cannot.
    """

    __slots__ = ("name", "n", "kwargs")

    def __init__(self, name: str, n: int, **kwargs: Any) -> None:
        self.name = str(name)
        self.n = check_positive_int("n", n)
        self.kwargs: Dict[str, Any] = dict(kwargs)

    def __call__(self) -> Strategy:
        return make_strategy(self.name, self.n, **self.kwargs)

    def cache_token(self) -> List[Any]:
        """Canonical description for the result cache (:mod:`repro.store`)."""
        return ["strategy", self.name, self.n, dict(sorted(self.kwargs.items()))]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrategySpec):
            return NotImplemented
        return (self.name, self.n, self.kwargs) == (other.name, other.n, other.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = "".join(f", {k}={v!r}" for k, v in sorted(self.kwargs.items()))
        return f"StrategySpec({self.name!r}, {self.n}{extra})"


class UniformPlatformSpec:
    """Picklable platform factory: *p* speeds uniform in ``[low, high]``.

    The paper's default platform draw (Figures 1, 4, 5, 9, 10 use
    ``[10, 100]``).
    """

    __slots__ = ("p", "low", "high")

    def __init__(self, p: int, low: float = 10.0, high: float = 100.0) -> None:
        self.p = check_positive_int("p", p)
        self.low = float(low)
        self.high = float(high)

    def __call__(self, rng: np.random.Generator) -> Platform:
        return Platform(uniform_speeds(self.p, self.low, self.high, rng=rng))

    def cache_token(self) -> List[Any]:
        """Canonical description for the result cache (:mod:`repro.store`)."""
        return ["uniform", self.p, self.low, self.high]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UniformPlatformSpec):
            return NotImplemented
        return (self.p, self.low, self.high) == (other.p, other.low, other.high)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformPlatformSpec(p={self.p}, low={self.low}, high={self.high})"


class FixedPlatformSpec:
    """Picklable platform factory returning one fixed speed vector.

    Mirrors the β sweeps (Figures 2, 6, 11), which reuse a single platform
    draw across every repetition; only the simulation stream varies.
    """

    __slots__ = ("speeds",)

    def __init__(self, speeds: Sequence[float]) -> None:
        self.speeds: Tuple[float, ...] = tuple(float(s) for s in check_speeds(speeds))

    def __call__(self, rng: np.random.Generator) -> Platform:
        return Platform(np.asarray(self.speeds, dtype=np.float64))

    def cache_token(self) -> List[Any]:
        """Canonical description for the result cache (:mod:`repro.store`)."""
        return ["fixed", list(self.speeds)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FixedPlatformSpec):
            return NotImplemented
        return self.speeds == other.speeds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedPlatformSpec(p={len(self.speeds)})"


class HeterogeneityPlatformSpec:
    """Picklable platform factory for the Figure-7 heterogeneity sweep."""

    __slots__ = ("p", "h")

    def __init__(self, p: int, h: float) -> None:
        self.p = check_positive_int("p", p)
        h = float(h)
        if not 0.0 <= h < 100.0:
            raise ValueError(f"heterogeneity h must lie in [0, 100), got {h}")
        self.h = h

    def __call__(self, rng: np.random.Generator) -> Platform:
        return Platform(heterogeneity_speeds(self.p, self.h, rng=rng))

    def cache_token(self) -> List[Any]:
        """Canonical description for the result cache (:mod:`repro.store`)."""
        return ["heterogeneity", self.p, self.h]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeterogeneityPlatformSpec):
            return NotImplemented
        return (self.p, self.h) == (other.p, other.h)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HeterogeneityPlatformSpec(p={self.p}, h={self.h})"


class ScenarioPlatformSpec:
    """Picklable platform factory for the named Figure-8 scenarios."""

    __slots__ = ("scenario", "p")

    def __init__(self, scenario: str, p: int) -> None:
        if scenario not in SCENARIO_NAMES:
            raise ValueError(
                f"unknown scenario {scenario!r}; choose from {sorted(SCENARIO_NAMES)}"
            )
        self.scenario = scenario
        self.p = check_positive_int("p", p)

    def __call__(self, rng: np.random.Generator) -> Tuple[Platform, SpeedModel]:
        return make_scenario(self.scenario, self.p, rng=rng)

    def cache_token(self) -> List[Any]:
        """Canonical description for the result cache (:mod:`repro.store`)."""
        return ["scenario", self.scenario, self.p]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioPlatformSpec):
            return NotImplemented
        return (self.scenario, self.p) == (other.scenario, other.p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScenarioPlatformSpec({self.scenario!r}, p={self.p})"


# ---------------------------------------------------------------------------
# The replicate job
# ---------------------------------------------------------------------------


#: One repetition's outcome: the normalized-communication value plus the
#: repetition sink's snapshot when metric collection is on (else ``None``).
RepOutcome = Tuple[float, Optional[Dict[str, Any]]]


def _rep_values(
    seeds: Sequence[np.random.SeedSequence],
    indices: Sequence[int],
    strategy_factory: StrategyFactory,
    platform_factory: PlatformFactory,
    n: int,
    collect_metrics: bool = False,
    vectorize: bool = False,
) -> List[RepOutcome]:
    """Run the repetitions *indices*, each from its own pre-spawned stream.

    With *vectorize* (a resolved boolean — ``"auto"`` is decided before the
    job is built) the whole index batch runs through the batch engine in
    one lockstep call; outcomes still come back in *indices* order and stay
    bit-identical to the scalar loop.
    """
    if vectorize:
        generators = [as_generator(seeds[i]) for i in indices]
        return _batch_outcomes(
            generators, strategy_factory, platform_factory, n, collect_metrics
        )
    outcomes: List[RepOutcome] = []
    for i in indices:
        rep_sink = RecordingSink() if collect_metrics else None
        value = _rep_normalized_comm(
            as_generator(seeds[i]), strategy_factory, platform_factory, n, sink=rep_sink
        )
        outcomes.append((value, None if rep_sink is None else rep_sink.snapshot()))
    return outcomes


class RepJob:
    """Everything a worker process needs to run a batch of repetitions.

    Holds the factories, the problem size and the **resolved** per-repetition
    seed sequences — resolving them in the parent is what makes results
    independent of the process a repetition lands on.  The job pickles iff
    its factories do (the ``*Spec`` classes above always do); under fork
    dispatch arbitrary closures work as well because nothing is pickled.

    With ``collect_metrics=True`` every repetition runs under a fresh
    :class:`~repro.obs.sink.RecordingSink` and its (picklable) snapshot
    travels back with the value, so the caller can fold snapshots in
    repetition order regardless of which process ran which repetition.
    """

    __slots__ = (
        "strategy_factory",
        "platform_factory",
        "n",
        "seeds",
        "collect_metrics",
        "vectorize",
    )

    def __init__(
        self,
        strategy_factory: StrategyFactory,
        platform_factory: PlatformFactory,
        n: int,
        seeds: Sequence[np.random.SeedSequence],
        collect_metrics: bool = False,
        vectorize: bool = False,
    ) -> None:
        self.strategy_factory = strategy_factory
        self.platform_factory = platform_factory
        self.n = check_positive_int("n", n)
        self.seeds: List[np.random.SeedSequence] = list(seeds)
        self.collect_metrics = bool(collect_metrics)
        self.vectorize = bool(vectorize)

    def run(self, indices: Sequence[int]) -> List[RepOutcome]:
        """Per-repetition ``(value, snapshot)`` outcomes for *indices*."""
        return _rep_values(
            self.seeds,
            indices,
            self.strategy_factory,
            self.platform_factory,
            self.n,
            self.collect_metrics,
            self.vectorize,
        )


# ---------------------------------------------------------------------------
# Dispatch machinery
# ---------------------------------------------------------------------------

#: Job published for fork-based workers (set around pool creation only).
_FORK_JOB: Optional[RepJob] = None


def _fork_chunk(indices: List[int]) -> List[RepOutcome]:
    job = _FORK_JOB
    if job is None:  # pragma: no cover - defensive
        raise RuntimeError("fork-dispatch chunk executed without a published job")
    return job.run(indices)


def _pickled_chunk(payload: bytes, indices: List[int]) -> List[RepOutcome]:
    job: RepJob = pickle.loads(payload)
    return job.run(indices)


def resolve_workers(workers: int) -> int:
    """Resolve a ``workers`` option: ``0`` means one worker per CPU."""
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise TypeError(f"workers must be an integer, got {type(workers).__name__}")
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = one per CPU), got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _chunk_indices(reps: int, workers: int, chunk_size: Optional[int]) -> List[List[int]]:
    """Split ``range(reps)`` into contiguous chunks, one per worker.

    Repetitions of one cell cost near-identical time, so stragglers are
    not a concern and the widest chunks win: each worker amortizes its
    startup over ``ceil(reps / workers)`` repetitions, and wide chunks
    are what lets a vectorized job run one big lockstep batch per worker.
    """
    if chunk_size is None:
        chunk_size = max(1, -(-reps // workers))
    else:
        chunk_size = check_positive_int("chunk_size", chunk_size)
    return [list(range(lo, min(lo + chunk_size, reps))) for lo in range(0, reps, chunk_size)]


def _preferred_context() -> Optional[multiprocessing.context.BaseContext]:
    """The best available multiprocessing context, or ``None`` if none is."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    if "spawn" in methods:
        return multiprocessing.get_context("spawn")
    return None


def _is_picklable(job: RepJob) -> bool:
    try:
        pickle.dumps(job)
    except Exception:
        return False
    return True


def _run_fork(
    job: RepJob,
    chunks: List[List[int]],
    workers: int,
    ctx: multiprocessing.context.BaseContext,
) -> Optional[List[RepOutcome]]:
    """Fork transport: workers inherit the job from the module global."""
    global _FORK_JOB
    _FORK_JOB = job
    try:
        try:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        except OSError:
            return None
        with pool:
            results = list(pool.map(_fork_chunk, chunks))
    finally:
        _FORK_JOB = None
    return [outcome for chunk in results for outcome in chunk]


#: The warm worker pool and the (start method, worker count) it was built
#: for.  Kept alive across calls so sweeps and bench loops pay process
#: startup once; :func:`shutdown_pool` (registered ``atexit``) reclaims it.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_KEY: Optional[Tuple[str, int]] = None


def shutdown_pool() -> None:
    """Shut down the warm worker pool, if one is alive.

    Called automatically at interpreter exit; tests and long-lived hosts
    can call it explicitly to reclaim the worker processes.
    """
    global _POOL, _POOL_KEY
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
    _POOL_KEY = None


atexit.register(shutdown_pool)


def _warm_pool(
    ctx: multiprocessing.context.BaseContext, workers: int
) -> Optional[ProcessPoolExecutor]:
    """The persistent pool for (*ctx*, *workers*), (re)building on change."""
    global _POOL, _POOL_KEY
    key = (ctx.get_start_method(), workers)
    if _POOL is not None and _POOL_KEY == key:
        return _POOL
    shutdown_pool()
    try:
        _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
    except OSError:
        return None
    _POOL_KEY = key
    return _POOL


def _run_pickled(
    job: RepJob,
    chunks: List[List[int]],
    workers: int,
    ctx: multiprocessing.context.BaseContext,
) -> Optional[List[RepOutcome]]:
    """Pickle transport over the warm pool (factories must pickle)."""
    payload = pickle.dumps(job)
    pool = _warm_pool(ctx, workers)
    if pool is None:
        return None
    try:
        results = list(pool.map(_pickled_chunk, repeat(payload), chunks))
    except BrokenProcessPool:
        shutdown_pool()
        return None
    return [outcome for chunk in results for outcome in chunk]


def _dispatch(
    job: RepJob, reps: int, workers: int, chunk_size: Optional[int]
) -> List[RepOutcome]:
    """Run all repetitions, in parallel where possible, serial otherwise."""
    all_indices = list(range(reps))
    chunks = _chunk_indices(reps, workers, chunk_size)
    if len(chunks) <= 1:
        return job.run(all_indices)
    ctx = _preferred_context()
    if ctx is None:
        return job.run(all_indices)
    if _is_picklable(job):
        values = _run_pickled(job, chunks, workers, ctx)
    elif ctx.get_start_method() == "fork":
        values = _run_fork(job, chunks, workers, ctx)
    else:
        return job.run(all_indices)
    if values is None:
        return job.run(all_indices)
    return values


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def parallel_average_normalized_comm(
    strategy_factory: StrategyFactory,
    platform_factory: PlatformFactory,
    n: int,
    reps: int,
    *,
    seed: SeedLike = 0,
    workers: int = 0,
    chunk_size: Optional[int] = None,
    sink: Optional[MetricsSink] = None,
    cache: Optional[ResultStore] = None,
    vectorize: Union[bool, str] = "auto",
) -> Summary:
    """Parallel drop-in for :func:`~repro.experiments.runner.average_normalized_comm`.

    Distributes the *reps* repetitions over ``workers`` processes
    (``0`` = one per CPU) and returns a :class:`~repro.utils.stats.Summary`
    **bit-identical** to the serial path for any worker count: streams are
    pre-spawned per repetition and aggregation runs in repetition order.
    ``chunk_size`` overrides the dispatch granularity (mostly for tests).

    A *sink* receives every repetition's metrics: each repetition runs under
    a fresh :class:`~repro.obs.sink.RecordingSink` in its worker process and
    the picklable snapshots are absorbed here **in repetition order**, so
    the accumulated metrics match the serial path bit for bit.

    A *cache* memoizes the whole cell exactly as the serial path does (same
    key, same payload — a cell computed serially is a parallel hit and vice
    versa); the store's file lock makes sharing one cache directory across
    worker processes safe.

    ``vectorize`` (``"auto"``/``True``/``False``) selects the batch engine
    inside each worker's chunk, exactly as in the serial entry point; it is
    resolved here once so worker processes never re-decide.
    """
    if reps <= 0:
        raise ValueError(f"reps must be positive, got {reps}")
    use_batch = _should_vectorize(vectorize, strategy_factory)
    key = None
    if cache is not None:
        key = replicate_cell_key(
            strategy_factory=strategy_factory,
            platform_factory=platform_factory,
            n=n,
            reps=reps,
            seed=seed,
            metrics=sink is not None,
        )
        if key is not None:
            cached = load_cell(cache, key, sink=sink)
            if cached is not None:
                return cached
    nworkers = resolve_workers(workers)
    job = RepJob(
        strategy_factory,
        platform_factory,
        n,
        spawn_seed_sequences(seed, reps),
        collect_metrics=sink is not None,
        vectorize=use_batch,
    )
    if nworkers <= 1:
        outcomes = job.run(list(range(reps)))
    else:
        outcomes = _dispatch(job, reps, nworkers, chunk_size)
    snapshots: Optional[List[Dict[str, Any]]] = (
        [] if (key is not None and sink is not None) else None
    )
    stats = RunningStats()
    for value, snapshot in outcomes:
        stats.add(value)
        if sink is not None and snapshot is not None:
            sink.absorb_snapshot(snapshot)
            if snapshots is not None:
                snapshots.append(snapshot)
    summary = stats.summary()
    if cache is not None and key is not None:
        save_cell(cache, key, summary, snapshots)
    return summary


# ---------------------------------------------------------------------------
# Callable batch entry point (used by ``repro-serve`` lane workers)
# ---------------------------------------------------------------------------


class CellRequest:
    """One replicate cell, described as data, for :func:`run_cells`.

    The request carries exactly the inputs of a
    :func:`~repro.experiments.runner.average_normalized_comm` call —
    factories, problem size, repetition count and seed — so a batch of
    heterogeneous cells (different strategies, platforms and sizes) can be
    submitted through one entry point.  ``key()`` exposes the cell's cache
    key, which is what lets callers (the serve queue, sweep planners)
    deduplicate requests before computing anything.
    """

    __slots__ = ("strategy_factory", "platform_factory", "n", "reps", "seed")

    def __init__(
        self,
        strategy_factory: StrategyFactory,
        platform_factory: PlatformFactory,
        n: int,
        reps: int,
        *,
        seed: SeedLike = 0,
    ) -> None:
        self.strategy_factory = strategy_factory
        self.platform_factory = platform_factory
        self.n = check_positive_int("n", n)
        self.reps = check_positive_int("reps", reps)
        self.seed = seed

    def key(self, *, metrics: bool = False) -> Optional[Dict[str, Any]]:
        """The cell's cache key (``None`` when any input is uncacheable)."""
        return replicate_cell_key(
            strategy_factory=self.strategy_factory,
            platform_factory=self.platform_factory,
            n=self.n,
            reps=self.reps,
            seed=self.seed,
            metrics=metrics,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CellRequest({self.strategy_factory!r}, {self.platform_factory!r}, "
            f"n={self.n}, reps={self.reps}, seed={self.seed!r})"
        )


class CellResult:
    """Outcome of one :class:`CellRequest`: a summary or an error string.

    Batch callers need per-cell fault isolation — one malformed cell must
    not void its batch siblings' work — so failures are captured here
    instead of raised.  Exactly one of ``summary``/``error`` is set.
    """

    __slots__ = ("summary", "error")

    def __init__(self, summary: Optional[Summary], error: Optional[str] = None) -> None:
        if (summary is None) == (error is None):
            raise ValueError("exactly one of summary/error must be set")
        self.summary = summary
        self.error = error

    @property
    def ok(self) -> bool:
        """True when the cell computed (or loaded) successfully."""
        return self.summary is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CellResult(summary={self.summary!r}, error={self.error!r})"


def run_cells(
    requests: Sequence[CellRequest],
    *,
    cache: Optional[ResultStore] = None,
    workers: int = 1,
    vectorize: Union[bool, str] = "auto",
) -> List[CellResult]:
    """Run a batch of replicate cells through the replicate runner.

    The callable batch entry point behind ``repro-serve``'s simulation
    lane: each request goes through
    :func:`~repro.experiments.runner.average_normalized_comm` with the
    shared *cache* (hits load, misses compute and write back) and the
    results come back **in request order**.  A failing cell yields a
    :class:`CellResult` carrying the error message instead of aborting the
    batch — the caller decides whether a cell failure is fatal.

    ``workers``/``vectorize`` are forwarded per cell; the batch itself runs
    sequentially in the calling thread, so a thread-pool caller gets one
    OS thread per *batch*, not per cell.
    """
    from repro.experiments.runner import average_normalized_comm

    results: List[CellResult] = []
    for request in requests:
        try:
            summary = average_normalized_comm(
                request.strategy_factory,
                request.platform_factory,
                request.n,
                request.reps,
                seed=request.seed,
                workers=workers,
                cache=cache,
                vectorize=vectorize,
            )
        except Exception as exc:
            results.append(CellResult(None, f"{type(exc).__name__}: {exc}"))
        else:
            results.append(CellResult(summary))
    return results
