"""Serialize figure data to CSV and render it in a terminal.

The repository carries no plotting dependency; figures are persisted as
tidy CSV (one row per series point) and can be eyeballed with a small
ASCII renderer.  Any plotting tool (pandas + matplotlib, gnuplot, ...) can
consume the CSVs directly.
"""

from __future__ import annotations

import contextlib
import csv
import io
import os
import tempfile
from typing import List, Optional, Sequence, Tuple

from repro.experiments.config import FigureData

__all__ = ["figure_to_rows", "write_csv", "read_csv", "render_figure"]

_HEADER = ("figure", "series", "x", "x_label", "mean", "std")


def figure_to_rows(fig: FigureData) -> List[Tuple]:
    """Flatten a figure into tidy rows (one per series point)."""
    rows: List[Tuple] = []
    for label, series in fig.series.items():
        for x, mean, std in zip(series.x, series.mean, series.std):
            x_label = ""
            if fig.x_categories is not None:
                idx = int(x)
                if 0 <= idx < len(fig.x_categories):
                    x_label = fig.x_categories[idx]
            rows.append((fig.figure_id, label, x, x_label, mean, std))
    return rows


def write_csv(fig: FigureData, path: str) -> str:
    """Write the figure to *path* as tidy CSV; returns the path.

    The write is atomic (temp file + ``os.replace``) so concurrent
    external sweep workers finishing the same figure — who by construction
    produce byte-identical rows — can never interleave halves of the file.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory or ".", suffix=".csv.tmp")
    try:
        with os.fdopen(fd, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(_HEADER)
            writer.writerows(figure_to_rows(fig))
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def read_csv(path: str) -> FigureData:
    """Rebuild a :class:`FigureData` from a tidy CSV written by :func:`write_csv`.

    Axis titles are not stored in the CSV; the figure id doubles as the
    title and the labels are left generic.  Categorical x labels are
    restored when present.
    """
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if tuple(header) != _HEADER:
            raise ValueError(f"{path} is not a repro figure CSV (header {header})")
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path} contains no data rows")
    figure_id = rows[0][0]
    categories: dict = {}
    fig = FigureData(figure_id=figure_id, title=figure_id, xlabel="x", ylabel="value")
    for fid, label, x, x_label, mean, std in rows:
        if fid != figure_id:
            raise ValueError(f"{path} mixes figures {figure_id!r} and {fid!r}")
        if label not in fig.series:
            fig.new_series(label)
        fig.series[label].add(float(x), float(mean), float(std))
        if x_label:
            categories[int(float(x))] = x_label
    if categories:
        size = max(categories) + 1
        fig.x_categories = [categories.get(i, str(i)) for i in range(size)]
    return fig


def _format_point(x: float, categories: Optional[Sequence[str]]) -> str:
    if categories is not None:
        idx = int(x)
        if 0 <= idx < len(categories):
            return str(categories[idx])
    if float(x).is_integer():
        return str(int(x))
    return f"{x:g}"


def render_figure(fig: FigureData, *, width: int = 78) -> str:
    """Human-readable table of the figure (series as columns)."""
    out = io.StringIO()
    out.write(f"== {fig.figure_id}: {fig.title}\n")
    for key, value in sorted(fig.meta.items()):
        out.write(f"   {key} = {value}\n")
    labels = list(fig.series)
    xs: List[float] = sorted({x for s in fig.series.values() for x in s.x})
    col = max(12, max((len(lb) for lb in labels), default=12) + 2)
    out.write(f"{fig.xlabel[:18]:>18} " + "".join(f"{lb[:col - 1]:>{col}}" for lb in labels) + "\n")
    for x in xs:
        out.write(f"{_format_point(x, fig.x_categories):>18} ")
        for lb in labels:
            s = fig.series[lb]
            try:
                idx = s.x.index(x)
                cell = f"{s.mean[idx]:.3f}"
                if s.std[idx] > 0:
                    cell += f"±{s.std[idx]:.2f}"
            except ValueError:
                cell = "-"
            out.write(f"{cell:>{col}}")
        out.write("\n")
    return out.getvalue()
