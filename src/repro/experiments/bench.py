"""``repro-bench`` — a persistent benchmark harness for the simulator.

The figure sweeps are dominated by the simulation engine's hot loop, so a
perf regression there silently multiplies every experiment's runtime.  This
module pins down a small fixed suite of workloads (engine runs at the
paper's instance sizes, the event-queue and sampler micro-loops, a
serial-vs-parallel replicate sweep, and cold-vs-warm roundtrips through an
in-process ``repro-serve`` instance), times them with
:func:`repro.obs.profile.wall_time` and writes a schema-versioned JSON
record that can be committed next to the results it contextualizes.  With
``--profile`` each workload additionally records per-stage wall time
through a :class:`~repro.obs.profile.StageProfiler`.

Usage::

    repro-bench list
    repro-bench run --quick --repeats 3 --outdir results
    repro-bench run --suite scaling --json scaling.json
    repro-bench run --json bench-current.json
    repro-bench compare results/BENCH_old.json bench-current.json
    repro-bench compare old.json new.json --threshold 0.1 --warn-only

``compare`` exits non-zero when any shared workload's median regressed by
more than ``--threshold`` (default 20%), unless ``--warn-only`` — which is
how CI uses it: wall-clock on shared runners is noisy, so regressions warn
there and gate only on dedicated machines.

Timing records are only comparable on the same machine: every JSON embeds
the interpreter/numpy/CPU fingerprint so ``compare`` can warn when two
records come from different environments.
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_module
import statistics
import sys
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.strategies.registry import make_strategy
from repro.experiments.parallel import StrategySpec, UniformPlatformSpec
from repro.experiments.runner import average_normalized_comm
from repro.obs.profile import StageProfiler, wall_time
from repro.platform.platform import Platform
from repro.platform.speeds import uniform_speeds
from repro.simulator.batch import fallback_reason
from repro.simulator.engine import simulate
from repro.simulator.events import EventQueue
from repro.taskpool.sample_set import SampleSet
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "SCHEMA",
    "SUITES",
    "Workload",
    "WorkloadFn",
    "build_parser",
    "build_suite",
    "compare_results",
    "main",
    "run_suite",
]

#: Schema tag embedded in every record; bump on incompatible layout changes.
SCHEMA = "repro-bench/1"

SUITES = ("default", "quick", "scaling")


#: A workload body: receives the top-level seed and a stage profiler (a
#: disabled one unless ``--profile``); must do the same deterministic amount
#: of work for a given seed.
WorkloadFn = Callable[[int, StageProfiler], object]


class Workload:
    """A named, timed unit of the benchmark suite.

    ``fn`` receives the top-level seed plus a
    :class:`~repro.obs.profile.StageProfiler` and must do the same
    deterministic amount of work for a given seed — repeats then measure
    timing noise, not workload variance.  Workloads wrap their coarse
    stages in ``prof.stage(...)`` blocks; the profiler is disabled (no
    clock reads) unless the harness runs with ``profile=True``.
    """

    __slots__ = ("name", "params", "fn")

    def __init__(self, name: str, params: Dict[str, Any], fn: WorkloadFn) -> None:
        self.name = name
        self.params = dict(params)
        self.fn = fn

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Workload({self.name!r}, params={self.params!r})"


# ---------------------------------------------------------------------------
# Workload factories
# ---------------------------------------------------------------------------


def _engine_workload(strategy_name: str, n: int, p: int) -> WorkloadFn:
    """Full simulation: *strategy_name* at size *n* on a p-worker platform."""

    def run(seed: int, prof: StageProfiler) -> object:
        with prof.stage("setup"):
            platform = Platform(uniform_speeds(p, 10, 100, rng=seed))
            strategy = make_strategy(strategy_name, n)
        with prof.stage("simulate"):
            return simulate(strategy, platform, rng=seed + 1)

    return run


def _faulty_engine_workload(strategy_name: str, n: int, p: int) -> WorkloadFn:
    """Fault-aware simulation: *strategy_name* under a drawn crash schedule."""

    def run(seed: int, prof: StageProfiler) -> object:
        from repro.faults.engine import simulate_faulty
        from repro.faults.models import FaultSchedule

        with prof.stage("setup"):
            platform = Platform(uniform_speeds(p, 10, 100, rng=seed))
            nominal = n * n / float(platform.speeds.sum())
            schedule = FaultSchedule.draw(
                p,
                4.0 * nominal,
                rng=seed + 2,
                crash_rate=2.0 / nominal,
                mean_downtime=0.1 * nominal,
            )
            strategy = make_strategy(strategy_name, n, collect_ids=True)
        with prof.stage("simulate"):
            return simulate_faulty(strategy, platform, schedule=schedule, rng=seed + 1)

    return run


def _event_queue_workload(events: int) -> WorkloadFn:
    """Steady-state push/pop churn through the event heap."""

    def run(seed: int, prof: StageProfiler) -> object:
        with prof.stage("churn"):
            queue = EventQueue()
            for w in range(8):
                queue.push(float(w), w)
            for _ in range(events):
                t, w = queue.pop()
                queue.push(t + 1.0, w)
        return queue

    return run


def _drain_sample_set(seed: int, size: int) -> SampleSet:
    rng = as_generator(seed)
    s = SampleSet(size)
    while s:
        s.draw(rng)
    return s


def _sample_drain_workload(size: int) -> WorkloadFn:
    """Drain a full SampleSet one uniform draw at a time."""

    def run(seed: int, prof: StageProfiler) -> object:
        with prof.stage("drain"):
            return _drain_sample_set(seed, size)

    return run


def _engine_params(strategy: StrategySpec, vectorize: "bool | str") -> Dict[str, Any]:
    """BENCH-JSON engine metadata for a sweep workload.

    Resolves what engine the workload's replicates actually run on, so a
    ``vectorize="auto"`` scalar fallback is recorded in the committed
    record rather than silently skewing a comparison: ``engine`` is
    ``"vectorized"`` or ``"scalar"``, and ``vectorize_fallback`` names the
    reason (``"forced"`` for an explicit ``vectorize=False``, else a
    :func:`repro.simulator.batch.fallback_reason` string).
    """
    if vectorize is False:
        return {"engine": "scalar", "vectorize_fallback": "forced"}
    reason = fallback_reason(strategy())
    if reason is None:
        return {"engine": "vectorized"}
    return {"engine": "scalar", "vectorize_fallback": reason}


def _sweep_workload(
    n: int, p: int, reps: int, workers: int, vectorize: "bool | str" = "auto"
) -> WorkloadFn:
    """Figure-9-style replicate sweep: RandomMatrix averaged over *reps*.

    *vectorize* pins the engine selection so the serial baseline stays a
    pure scalar-loop measurement (comparable with pre-batch records) while
    the vectorized workload measures the batch engine.
    """
    strategy = StrategySpec("RandomMatrix", n)
    platform_spec = UniformPlatformSpec(p)

    def run(seed: int, prof: StageProfiler) -> object:
        with prof.stage("sweep"):
            return average_normalized_comm(
                strategy,
                platform_spec,
                n,
                reps,
                seed=seed,
                workers=workers,
                vectorize=vectorize,
            )

    return run


def _beta_sweep_workload(
    strategy_name: str,
    n: int,
    p: int,
    reps: int,
    betas: "tuple[float, ...]",
    vectorize: "bool | str",
) -> WorkloadFn:
    """Figure-6/11-style β sweep: a two-phase strategy across a β grid.

    The sweep the paper's headline comparisons hinge on — one
    ``average_normalized_comm`` cell per β, all replicates on the engine
    *vectorize* selects, so the serial/vectorized workload pair measures
    the two-phase kernels end to end.
    """
    platform_spec = UniformPlatformSpec(p)

    def run(seed: int, prof: StageProfiler) -> object:
        out = []
        with prof.stage("sweep"):
            for beta in betas:
                out.append(
                    average_normalized_comm(
                        StrategySpec(strategy_name, n, beta=float(beta)),
                        platform_spec,
                        n,
                        reps,
                        seed=seed,
                        workers=1,
                        vectorize=vectorize,
                    )
                )
        return out

    return run


def _store_roundtrip_workload(entries: int) -> WorkloadFn:
    """Put/get churn through a content-addressed ResultStore on tmpfs-ish disk."""

    def run(seed: int, prof: StageProfiler) -> object:
        import shutil
        import tempfile

        from repro.store.cache import ResultStore

        root = tempfile.mkdtemp(prefix="repro-bench-store-")
        try:
            store = ResultStore(root)
            payload = {"summary": {"n": 8, "mean": 1.25, "std": 0.5, "min": 1.0, "max": 2.0}}
            with prof.stage("put"):
                for i in range(entries):
                    store.put({"schema": "bench", "seed": seed, "i": i}, payload, kind="bench")
            with prof.stage("get"):
                for i in range(entries):
                    store.get({"schema": "bench", "seed": seed, "i": i}, kind="bench")
            return store.counts
        finally:
            shutil.rmtree(root, ignore_errors=True)

    return run


def _serve_roundtrip_workload(cells: int, n: int, reps: int) -> WorkloadFn:
    """Cold-miss vs warm-hit latency through a real ``repro-serve`` instance.

    Boots an in-process :class:`~repro.serve.client.ServerThread` on an
    ephemeral port with a throwaway store, POSTs *cells* distinct
    simulation cells twice over real TCP — the first pass computes
    (``cold_miss``), the second answers from the store (``warm_hit``) —
    then drains.  The stage split is the service's headline number: how
    much a warm cache buys over recomputation.
    """

    def run(seed: int, prof: StageProfiler) -> object:
        import shutil
        import tempfile

        from repro.serve.client import ServeClient, ServerThread
        from repro.serve.service import ServeConfig

        root = tempfile.mkdtemp(prefix="repro-bench-serve-")
        try:
            config = ServeConfig(port=0, store_root=root, quota_burst=0)
            with prof.stage("boot"):
                server = ServerThread(config)
                host, port = server.start()
            try:
                client = ServeClient(host, port, client_id="bench")
                specs = [
                    {
                        "strategy": "DynamicOuter",
                        "n": n,
                        "reps": reps,
                        "seed": seed + i,
                        "platform": {"type": "uniform", "p": 4},
                    }
                    for i in range(cells)
                ]
                with prof.stage("cold_miss"):
                    cold = [client.cell(spec) for spec in specs]
                with prof.stage("warm_hit"):
                    warm = [client.cell(spec) for spec in specs]
                assert all(r["status"] == "hit" for r in warm)
                return cold, warm
            finally:
                server.stop()
        finally:
            shutil.rmtree(root, ignore_errors=True)

    return run


def _scaling_suite() -> List[Workload]:
    """The replicate-count scaling sweep plus the two-phase β sweep.

    R ∈ {1, 4, 16, 64} × 3 engines for RandomMatrix, and a serial vs
    vectorized DynamicOuter2Phases β sweep — the cell the two-phase
    kernels' committed speedup is measured on.
    """
    n, p = 16, 50
    spec = StrategySpec("RandomMatrix", n)
    workloads: List[Workload] = []
    for reps in (1, 4, 16, 64):
        base = {"strategy": "RandomMatrix", "n": n, "p": p, "reps": reps}
        workloads.append(
            Workload(
                f"scaling_reps{reps:02d}_serial",
                {**base, "workers": 1, "vectorize": False, **_engine_params(spec, False)},
                _sweep_workload(n, p, reps, 1, vectorize=False),
            )
        )
        workloads.append(
            Workload(
                f"scaling_reps{reps:02d}_vectorized",
                {**base, "workers": 1, "vectorize": True, **_engine_params(spec, True)},
                _sweep_workload(n, p, reps, 1, vectorize=True),
            )
        )
        workloads.append(
            Workload(
                f"scaling_reps{reps:02d}_parallel4",
                {**base, "workers": 4, "vectorize": "auto", **_engine_params(spec, "auto")},
                _sweep_workload(n, p, reps, 4, vectorize="auto"),
            )
        )
    # DynamicMatrix2Phases is the cell where vectorization pays most: the
    # scalar engine's per-event cost (cube marking, three n^2 block
    # caches) dwarfs the kernel's, and the static-speed phase-2 tail is
    # closed-form.  Low betas cross into phase 2 early, so the analytic
    # path dominates; higher betas spend longer in the RNG-bound phase-1
    # lockstep and pull the aggregate down.
    tp_n, tp_p, tp_reps = 12, 20, 256
    tp_betas = (0.5, 1.0, 1.5, 2.0)
    tp_spec = StrategySpec("DynamicMatrix2Phases", tp_n, beta=tp_betas[0])
    tp_base = {
        "strategy": "DynamicMatrix2Phases",
        "n": tp_n,
        "p": tp_p,
        "reps": tp_reps,
        "betas": list(tp_betas),
        "workers": 1,
    }
    for engine, vectorize in (("serial", False), ("vectorized", True)):
        workloads.append(
            Workload(
                f"twophase_beta_sweep_{engine}",
                {**tp_base, "vectorize": vectorize, **_engine_params(tp_spec, vectorize)},
                _beta_sweep_workload(
                    "DynamicMatrix2Phases", tp_n, tp_p, tp_reps, tp_betas, vectorize
                ),
            )
        )
    return workloads


def build_suite(suite: str = "default") -> List[Workload]:
    """The fixed workload list for *suite*.

    The default suite exercises the engine at the paper's instance sizes;
    ``quick`` shrinks every workload to a few seconds total for CI smoke
    runs (the two share workload names so records remain comparable within
    one suite); ``scaling`` sweeps the replicate count R ∈ {1, 4, 16, 64}
    serial vs vectorized vs parallel to chart how the batch engine and the
    process pool amortize.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; choose from {SUITES}")
    if suite == "scaling":
        return _scaling_suite()
    quick = suite == "quick"
    n_rand = 60 if quick else 100
    n_dyn = 150 if quick else 300
    n_mat = 20 if quick else 40
    events = 50_000 if quick else 200_000
    drain = 30_000 if quick else 100_000
    sweep_n = 20 if quick else 40
    sweep_p = 40 if quick else 100
    sweep_reps = 4 if quick else 8
    store_entries = 100 if quick else 500
    serve_cells = 4 if quick else 12
    serve_n = 12 if quick else 20
    p = 50
    return [
        Workload(
            "engine_outer_random",
            {"strategy": "RandomOuter", "n": n_rand, "p": p},
            _engine_workload("RandomOuter", n_rand, p),
        ),
        Workload(
            "engine_outer_dynamic",
            {"strategy": "DynamicOuter", "n": n_dyn, "p": p},
            _engine_workload("DynamicOuter", n_dyn, p),
        ),
        Workload(
            "engine_matrix_dynamic",
            {"strategy": "DynamicMatrix", "n": n_mat, "p": p},
            _engine_workload("DynamicMatrix", n_mat, p),
        ),
        Workload(
            "engine_outer_faulty",
            {"strategy": "DynamicOuter", "n": n_rand, "p": p, "crashes_per_worker": 2},
            _faulty_engine_workload("DynamicOuter", n_rand, p),
        ),
        Workload(
            "event_queue_churn",
            {"events": events},
            _event_queue_workload(events),
        ),
        Workload(
            "sample_set_drain",
            {"size": drain},
            _sample_drain_workload(drain),
        ),
        Workload(
            "replicate_sweep_serial",
            {"strategy": "RandomMatrix", "n": sweep_n, "p": sweep_p, "reps": sweep_reps, "workers": 1, "vectorize": False,
             **_engine_params(StrategySpec("RandomMatrix", sweep_n), False)},
            _sweep_workload(sweep_n, sweep_p, sweep_reps, 1, vectorize=False),
        ),
        Workload(
            "replicate_sweep_vectorized",
            {"strategy": "RandomMatrix", "n": sweep_n, "p": sweep_p, "reps": sweep_reps, "workers": 1, "vectorize": True,
             **_engine_params(StrategySpec("RandomMatrix", sweep_n), True)},
            _sweep_workload(sweep_n, sweep_p, sweep_reps, 1, vectorize=True),
        ),
        Workload(
            "replicate_sweep_parallel4",
            {"strategy": "RandomMatrix", "n": sweep_n, "p": sweep_p, "reps": sweep_reps, "workers": 4, "vectorize": False,
             **_engine_params(StrategySpec("RandomMatrix", sweep_n), False)},
            _sweep_workload(sweep_n, sweep_p, sweep_reps, 4, vectorize=False),
        ),
        Workload(
            "store_roundtrip",
            {"entries": store_entries},
            _store_roundtrip_workload(store_entries),
        ),
        Workload(
            "serve_roundtrip",
            {"cells": serve_cells, "n": serve_n, "reps": 2},
            _serve_roundtrip_workload(serve_cells, serve_n, 2),
        ),
    ]


# ---------------------------------------------------------------------------
# Running and recording
# ---------------------------------------------------------------------------


def _machine_info() -> Dict[str, Any]:
    return {
        "platform": platform_module.platform(),
        "python": platform_module.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _derive_metrics(entries: Dict[str, Any], cpu_count: Optional[int]) -> Dict[str, Any]:
    """Cross-workload metrics for a record's ``derived`` block.

    Pure function of the timed entries (exposed for tests):

    * ``replicate_sweep_speedup`` — serial over 4-worker median;
    * ``parallel_speedup_ok`` — the warn-only assertion that process
      parallelism pays (speedup ≥ 1.0) whenever the machine actually has
      more than one CPU;
    * ``replicate_sweep_vectorized_speedup`` — serial over batch-engine
      median, the headline number of the vectorized engine;
    * ``twophase_beta_sweep_speedup`` — the same ratio for the scaling
      suite's DynamicOuter2Phases β sweep, pinning the two-phase kernels;
    * ``scaling_curve`` — one row per replicate count of the scaling
      suite, with both speedups.
    """

    def median_of(name: str) -> Optional[float]:
        entry = entries.get(name)
        return None if entry is None else float(entry["seconds"]["median"])

    derived: Dict[str, Any] = {}
    serial = median_of("replicate_sweep_serial")
    par = median_of("replicate_sweep_parallel4")
    vec = median_of("replicate_sweep_vectorized")
    if serial is not None and par is not None and par > 0:
        speedup = serial / par
        derived["replicate_sweep_speedup"] = speedup
        derived["parallel_speedup_ok"] = bool(speedup >= 1.0 or (cpu_count or 1) <= 1)
    if serial is not None and vec is not None and vec > 0:
        derived["replicate_sweep_vectorized_speedup"] = serial / vec
    curve: List[Dict[str, Any]] = []
    for reps in (1, 4, 16, 64):
        s = median_of(f"scaling_reps{reps:02d}_serial")
        v = median_of(f"scaling_reps{reps:02d}_vectorized")
        q = median_of(f"scaling_reps{reps:02d}_parallel4")
        if s is None or v is None or q is None:
            continue
        curve.append(
            {
                "reps": reps,
                "serial_s": s,
                "vectorized_s": v,
                "parallel_s": q,
                "vectorized_speedup": s / v if v > 0 else None,
                "parallel_speedup": s / q if q > 0 else None,
            }
        )
    if curve:
        derived["scaling_curve"] = curve
    tp_serial = median_of("twophase_beta_sweep_serial")
    tp_vec = median_of("twophase_beta_sweep_vectorized")
    if tp_serial is not None and tp_vec is not None and tp_vec > 0:
        derived["twophase_beta_sweep_speedup"] = tp_serial / tp_vec
    return derived


def run_suite(
    suite: str = "default",
    *,
    seed: int = 0,
    repeats: int = 3,
    echo: Optional[Callable[[str], object]] = None,
    profile: bool = False,
) -> Dict[str, Any]:
    """Time every workload of *suite* and return the JSON-ready record.

    Each workload runs ``repeats`` times on the same seed (the work is
    deterministic per seed, so spread across repeats is timing noise); the
    record keeps the median, min and mean.  ``echo`` receives a progress
    line per workload when given.

    With ``profile=True`` every workload additionally runs with an enabled
    :class:`~repro.obs.profile.StageProfiler`; the record then carries a
    per-workload ``profile`` entry with the wall seconds spent in each
    stage, summed across the repeats.
    """
    repeats = check_positive_int("repeats", repeats)
    workloads = build_suite(suite)
    entries: Dict[str, Any] = {}
    for wl in workloads:
        times: List[float] = []
        prof = StageProfiler(enabled=profile)
        for _ in range(repeats):
            start = wall_time()
            wl.fn(seed, prof)
            times.append(wall_time() - start)
        entry: Dict[str, Any] = {
            "params": dict(wl.params),
            "repeats": repeats,
            "seconds": {
                "median": statistics.median(times),
                "min": min(times),
                "mean": statistics.fmean(times),
            },
        }
        if profile:
            entry["profile"] = prof.to_dict()
        entries[wl.name] = entry
        if echo is not None:
            echo(f"  {wl.name:28s} median {statistics.median(times):8.4f}s")
    record: Dict[str, Any] = {
        "schema": SCHEMA,
        "suite": suite,
        "seed": seed,
        "repeats": repeats,
        "profile": profile,
        "machine": _machine_info(),
        "workloads": entries,
    }
    derived = _derive_metrics(entries, os.cpu_count())
    if derived:
        record["derived"] = derived
    if echo is not None and derived.get("parallel_speedup_ok") is False:
        echo(
            "  warning: parallel replicate sweep is slower than serial on a "
            "multi-core machine"
        )
    return record


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def compare_results(
    old: Dict[str, Any], new: Dict[str, Any], threshold: float = 0.2
) -> List[Dict[str, Any]]:
    """Per-workload comparison rows between two bench records.

    Each row has ``name``, ``status`` (``"regression"`` / ``"improved"`` /
    ``"ok"`` / ``"new"`` / ``"removed"``) and, where both medians exist,
    ``ratio`` (new over old).  A median more than ``threshold`` above the
    old one is a regression.
    """
    if not 0 < threshold:
        raise ValueError(f"threshold must be positive, got {threshold}")
    old_wl: Dict[str, Any] = old.get("workloads", {})
    new_wl: Dict[str, Any] = new.get("workloads", {})
    rows: List[Dict[str, Any]] = []
    for name, entry in new_wl.items():
        base = old_wl.get(name)
        if base is None:
            rows.append({"name": name, "status": "new"})
            continue
        old_med = float(base["seconds"]["median"])
        new_med = float(entry["seconds"]["median"])
        ratio = new_med / old_med if old_med > 0 else float("inf")
        if ratio > 1.0 + threshold:
            status = "regression"
        elif ratio < 1.0 - threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append(
            {
                "name": name,
                "status": status,
                "ratio": ratio,
                "old_median": old_med,
                "new_median": new_med,
            }
        )
    for name in old_wl:
        if name not in new_wl:
            rows.append({"name": name, "status": "removed"})
    return rows


def _render_rows(rows: List[Dict[str, Any]]) -> str:
    lines = [f"{'workload':28s} {'old':>10s} {'new':>10s} {'ratio':>7s}  status"]
    for row in rows:
        if "ratio" in row:
            lines.append(
                f"{row['name']:28s} {row['old_median']:9.4f}s {row['new_median']:9.4f}s"
                f" {row['ratio']:6.2f}x  {row['status']}"
            )
        else:
            lines.append(f"{row['name']:28s} {'-':>10s} {'-':>10s} {'-':>7s}  {row['status']}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-bench`` argument parser (exposed for the docs tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the simulation engine and record/compare timings.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workloads of each suite")

    run = sub.add_parser("run", help="time the suite and write a JSON record")
    run.add_argument("--quick", action="store_true", help="run the reduced CI suite")
    run.add_argument(
        "--suite",
        choices=SUITES,
        default=None,
        help="suite to run (overrides --quick; e.g. 'scaling' for the replicate-count sweep)",
    )
    run.add_argument("--repeats", type=int, default=3, help="timed repeats per workload (default: 3)")
    run.add_argument("--seed", type=int, default=0, help="workload seed (default: 0)")
    run.add_argument("--outdir", default="results", help="directory for BENCH_<timestamp>.json (default: results)")
    run.add_argument("--json", dest="json_path", default=None, help="exact output path (overrides --outdir)")
    run.add_argument(
        "--profile",
        action="store_true",
        help="record per-stage wall time for every workload into the JSON",
    )

    cmp_ = sub.add_parser("compare", help="compare two bench records")
    cmp_.add_argument("old", help="baseline JSON record")
    cmp_.add_argument("new", help="candidate JSON record")
    cmp_.add_argument("--threshold", type=float, default=0.2, help="relative regression threshold (default: 0.2)")
    cmp_.add_argument("--warn-only", action="store_true", help="report regressions but exit 0")
    return parser


def _load_record(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    if not isinstance(record, dict) or record.get("schema") != SCHEMA:
        raise SystemExit(f"{path}: not a {SCHEMA} record")
    return record


def _cmd_run(args: argparse.Namespace) -> int:
    suite = args.suite if args.suite else ("quick" if args.quick else "default")
    print(f"repro-bench: running suite '{suite}' ({args.repeats} repeats)")
    record = run_suite(
        suite, seed=args.seed, repeats=args.repeats, echo=print, profile=args.profile
    )
    if args.json_path:
        path = args.json_path
    else:
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        os.makedirs(args.outdir, exist_ok=True)
        path = os.path.join(args.outdir, f"BENCH_{stamp}.json")
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    derived = record.get("derived", {})
    if "replicate_sweep_speedup" in derived:
        print(f"  replicate sweep speedup (4 workers): {derived['replicate_sweep_speedup']:.2f}x")
    if "replicate_sweep_vectorized_speedup" in derived:
        print(
            f"  replicate sweep speedup (vectorized): "
            f"{derived['replicate_sweep_vectorized_speedup']:.2f}x"
        )
    if "twophase_beta_sweep_speedup" in derived:
        print(
            f"  two-phase beta sweep speedup (vectorized): "
            f"{derived['twophase_beta_sweep_speedup']:.2f}x"
        )
    if derived.get("parallel_speedup_ok") is False:
        print(
            "warning: parallel replicate sweep is slower than serial on a "
            "multi-core machine",
            file=sys.stderr,
        )
    print(f"wrote {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    old = _load_record(args.old)
    new = _load_record(args.new)
    if old.get("suite") != new.get("suite"):
        print(
            f"warning: comparing different suites ({old.get('suite')} vs {new.get('suite')})",
            file=sys.stderr,
        )
    if old.get("machine") != new.get("machine"):
        print("warning: records come from different machines; timings may not be comparable",
              file=sys.stderr)
    rows = compare_results(old, new, threshold=args.threshold)
    print(_render_rows(rows))
    old_vec = old.get("derived", {}).get("replicate_sweep_vectorized_speedup")
    new_vec = new.get("derived", {}).get("replicate_sweep_vectorized_speedup")
    if old_vec is not None or new_vec is not None:

        def fmt(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:.2f}x"

        print(f"vectorized-vs-serial speedup: old {fmt(old_vec)}, new {fmt(new_vec)}")
    regressions = [r for r in rows if r["status"] == "regression"]
    if regressions:
        names = ", ".join(r["name"] for r in regressions)
        print(f"regressions (> {100 * args.threshold:.0f}% over baseline): {names}", file=sys.stderr)
        return 0 if args.warn_only else 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-bench``; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for suite in SUITES:
            print(f"suite '{suite}':")
            for wl in build_suite(suite):
                params = ", ".join(f"{k}={v}" for k, v in sorted(wl.params.items()))
                print(f"  {wl.name:28s} {params}")
        return 0
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_compare(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
