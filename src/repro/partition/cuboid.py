"""Static 3-D partition of the unit cube into cuboids ∝ speeds (extension).

The matmul analogue of :mod:`repro.partition.column`: worker ``k`` computes
a ``w x h x d`` box of the ``n^3`` task domain and must receive the three
faces ``A[h x d]``, ``B[d x w]``, ``C[w x h]``, i.e.
``n^2 (h d + d w + w h)`` blocks.  The communication-optimal shape is a
cube of volume ``rs_k`` (cost ``3 rs_k^{2/3} n^2`` — exactly the paper's
matmul lower bound), which is unattainable in general.

The paper does not evaluate a static matmul baseline; we provide this
*slab/column* heuristic as an ablation target: sort volumes, slice the cube
into ``G`` depth slabs (contiguous runs of the sorted sequence, scanned
exhaustively over ``G``), then partition each slab's cross-section with the
exact 2-D column DP.  The result is a valid partition whose cost upper-
bounds the static optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.partition.column import partition_square

__all__ = ["Cuboid", "CuboidPartition", "partition_cube"]


@dataclass(frozen=True)
class Cuboid:
    """One box of the partition (unit-cube coordinates)."""

    owner: int
    x: float
    y: float
    z: float
    width: float  # along j (B/C dimension)
    height: float  # along i (A/C dimension)
    depth: float  # along k (A/B dimension)

    @property
    def volume(self) -> float:
        return self.width * self.height * self.depth

    @property
    def face_sum(self) -> float:
        """``h d + d w + w h`` — the per-worker communication in ``n^2`` units."""
        return self.height * self.depth + self.depth * self.width + self.width * self.height


@dataclass(frozen=True)
class CuboidPartition:
    """Result of :func:`partition_cube`."""

    cuboids: List[Cuboid]
    slab_sizes: List[int]

    @property
    def face_sum_total(self) -> float:
        return sum(c.face_sum for c in self.cuboids)

    def communication_volume(self, n: int) -> float:
        """Matmul communication volume in blocks for ``n x n``-block matrices."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return n * n * self.face_sum_total

    def approximation_ratio(self) -> float:
        """Face-sum total over the cube lower bound ``3 sum v_k^{2/3}``."""
        volumes = np.array([c.volume for c in self.cuboids])
        return self.face_sum_total / (3.0 * np.sum(volumes ** (2.0 / 3.0)))


def _normalize(volumes: Sequence[float]) -> np.ndarray:
    arr = np.asarray(volumes, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("volumes must be a non-empty 1-D sequence")
    if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
        raise ValueError("volumes must be positive and finite")
    return arr / arr.sum()


def partition_cube(volumes: Sequence[float]) -> CuboidPartition:
    """Slab/column heuristic partition of the unit cube.

    Scans every slab count ``G`` (contiguous equal-mass-greedy runs of the
    non-increasingly sorted volumes), partitions each slab cross-section
    with the exact 2-D DP, and keeps the cheapest result.
    """
    rel = _normalize(volumes)
    p = rel.size
    order = np.argsort(-rel)
    sorted_rel = rel[order]

    best: CuboidPartition | None = None
    best_cost = float("inf")
    for n_slabs in range(1, p + 1):
        groups = _greedy_contiguous_groups(sorted_rel, n_slabs)
        if groups is None:
            continue
        cuboids: List[Cuboid] = []
        slab_sizes: List[int] = []
        z = 0.0
        for start, end in groups:
            mass = float(sorted_rel[start:end].sum())
            depth = mass  # slab depth proportional to its total volume
            cross = partition_square(sorted_rel[start:end])
            for rect in cross.rects:
                cuboids.append(
                    Cuboid(
                        owner=int(order[start + rect.owner]),
                        x=rect.x,
                        y=rect.y,
                        z=z,
                        width=rect.width,
                        height=rect.height,
                        depth=depth,
                    )
                )
            slab_sizes.append(end - start)
            z += depth
        candidate = CuboidPartition(cuboids=cuboids, slab_sizes=slab_sizes)
        if candidate.face_sum_total < best_cost:
            best_cost = candidate.face_sum_total
            best = candidate
    assert best is not None
    return best


def _greedy_contiguous_groups(sorted_rel: np.ndarray, n_groups: int) -> Optional[List[Tuple[int, int]]]:
    """Split the sorted sequence into contiguous groups of ~equal mass.

    Returns ``None`` when a group would be empty (more groups than items).
    """
    p = sorted_rel.size
    if n_groups > p:
        return None
    groups = []
    start = 0
    remaining_mass = 1.0
    for g in range(n_groups):
        remaining_groups = n_groups - g
        target = remaining_mass / remaining_groups
        end = start
        mass = 0.0
        # Take at least one item, then keep taking while below target —
        # but always leave enough items for the remaining groups.
        while end < p - (remaining_groups - 1):
            mass += sorted_rel[end]
            end += 1
            if mass >= target:
                break
        if end == start:
            return None
        groups.append((start, end))
        remaining_mass -= mass
        start = end
    if start != p:
        # Put leftovers into the last group.
        s, _ = groups[-1]
        groups[-1] = (s, p)
    return groups
