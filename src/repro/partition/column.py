"""Column-based partition of the unit square into rectangles ∝ speeds.

Problem (the paper's reference [2]): partition the unit square into ``p``
rectangles of prescribed areas ``a_1, ..., a_p`` (the relative speeds)
minimizing the sum of half-perimeters ``sum_i (w_i + h_i)``.  For the outer
product, a worker assigned a ``w x h`` rectangle of the task domain must
receive ``h n`` blocks of ``a`` and ``w n`` blocks of ``b``, so the total
communication is ``n * sum_i (w_i + h_i)`` — the half-perimeter sum *is*
the (normalized) communication volume.

The COLUMN heuristic restricts rectangles to full-height stacks inside
vertical columns.  With areas sorted in non-increasing order and columns
taking *contiguous runs* of the sorted sequence, the optimal column
partition is computed exactly by an O(p^2) dynamic program over run
boundaries: a column holding the ``c`` areas of total mass ``W`` costs
``c * W + 1`` (each of its rectangles has width ``W`` and their heights sum
to 1).  Beaumont et al. prove the resulting partition is within ``7/4`` of
the (NP-hard) optimum; the lower bound used for the ratio is
``2 sum_i sqrt(a_i)`` (each rectangle's half-perimeter is at least
``2 sqrt(a_i)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["Rect", "ColumnPartition", "partition_square"]


@dataclass(frozen=True)
class Rect:
    """One rectangle of the partition (unit-square coordinates)."""

    owner: int  # index into the original speed array
    x: float  # left edge
    y: float  # bottom edge
    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def half_perimeter(self) -> float:
        return self.width + self.height


@dataclass(frozen=True)
class ColumnPartition:
    """Result of :func:`partition_square`."""

    rects: List[Rect]
    column_sizes: List[int]  # number of rectangles per column (sorted order)

    @property
    def half_perimeter_sum(self) -> float:
        return sum(r.half_perimeter for r in self.rects)

    def communication_volume(self, n: int) -> float:
        """Outer-product communication volume in blocks for size-*n* vectors."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return n * self.half_perimeter_sum

    def approximation_ratio(self) -> float:
        """Half-perimeter sum over the ``2 sum sqrt(a_i)`` lower bound."""
        areas = np.array([r.area for r in self.rects])
        return self.half_perimeter_sum / (2.0 * np.sum(np.sqrt(areas)))


def _normalize_areas(areas: Sequence[float]) -> np.ndarray:
    arr = np.asarray(areas, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("areas must be a non-empty 1-D sequence")
    if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
        raise ValueError("areas must be positive and finite")
    return arr / arr.sum()


def partition_square(areas: Sequence[float]) -> ColumnPartition:
    """Best column partition of the unit square for the given areas/speeds.

    Areas are normalized to sum to 1 (pass raw speeds directly).  Runs the
    exact O(p^2) DP over contiguous runs of the non-increasingly sorted
    areas and materializes the rectangles.
    """
    rel = _normalize_areas(areas)
    p = rel.size
    order = np.argsort(-rel)  # non-increasing
    sorted_rel = rel[order]
    prefix = np.concatenate([[0.0], np.cumsum(sorted_rel)])

    # cost[j] = min total cost of packing the first j sorted areas into
    # complete columns; column (i..j] costs (j - i) * (prefix[j] - prefix[i]) + 1.
    INF = float("inf")
    cost = np.full(p + 1, INF)
    cost[0] = 0.0
    back = np.zeros(p + 1, dtype=np.int64)
    for j in range(1, p + 1):
        for i in range(j):
            if cost[i] == INF:
                continue
            c = cost[i] + (j - i) * (prefix[j] - prefix[i]) + 1.0
            if c < cost[j]:
                cost[j] = c
                back[j] = i

    # Recover column boundaries.
    bounds: List[int] = []
    j = p
    while j > 0:
        i = int(back[j])
        bounds.append(j)
        j = i
    bounds.reverse()

    rects: List[Rect] = []
    column_sizes: List[int] = []
    x = 0.0
    start = 0
    for end in bounds:
        width = float(prefix[end] - prefix[start])
        column_sizes.append(end - start)
        y = 0.0
        for idx in range(start, end):
            height = float(sorted_rel[idx] / width)
            rects.append(
                Rect(owner=int(order[idx]), x=x, y=y, width=width, height=height)
            )
            y += height
        x += width
        start = end

    return ColumnPartition(rects=rects, column_sizes=column_sizes)
