"""Static partitioning baselines.

The paper's static comparison point is the column-based partition of the
unit square into rectangles proportional to processor speeds — the
7/4-approximation of Beaumont, Boudet, Rastello, Robert, *"Partitioning a
square into rectangles: NP-completeness and approximation algorithms"*,
Algorithmica 34(3), 2002 (the paper's reference [2]).  We implement it from
scratch (:mod:`~repro.partition.column`) together with a 3-D cuboid
analogue for matmul (:mod:`~repro.partition.cuboid`, an extension beyond
the paper used for ablations).

These baselines require *complete knowledge of all relative speeds* — the
very assumption the dynamic strategies avoid — and serve as the "what a
fully static scheduler could do" yardstick.
"""

from repro.partition.column import ColumnPartition, Rect, partition_square
from repro.partition.cuboid import Cuboid, CuboidPartition, partition_cube

__all__ = [
    "Rect",
    "ColumnPartition",
    "partition_square",
    "Cuboid",
    "CuboidPartition",
    "partition_cube",
]
