"""JSON (de)serialization of simulation results and traces.

Lets a simulation be archived and re-analyzed (or replayed by
:mod:`repro.execution`) without re-running it.  The format is plain JSON:
arrays become lists, the optional per-record ``task_ids`` are preserved.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Optional

import numpy as np

from repro.simulator.results import FaultStats, SimulationResult
from repro.simulator.trace import AssignmentRecord, FaultRecord, Trace

__all__ = ["result_to_json", "result_from_json", "save_result", "load_result"]

_FORMAT = "repro.simulation/1"


def result_to_json(result: SimulationResult) -> str:
    """Serialize a :class:`SimulationResult` (with any trace) to JSON."""
    payload = {
        "format": _FORMAT,
        "strategy": result.strategy_name,
        "total_blocks": result.total_blocks,
        "per_worker_blocks": result.per_worker_blocks.tolist(),
        "per_worker_tasks": result.per_worker_tasks.tolist(),
        "makespan": result.makespan,
        "n_assignments": result.n_assignments,
        "trace": None,
        "fault_events": None,
        "faults": None,
    }
    if result.trace is not None:
        payload["trace"] = [
            {
                "time": r.time,
                "worker": r.worker,
                "blocks": r.blocks,
                "tasks": r.tasks,
                "duration": r.duration,
                "phase": r.phase,
                "task_ids": None if r.task_ids is None else r.task_ids.tolist(),
            }
            for r in result.trace
        ]
        if result.trace.faults:
            payload["fault_events"] = [
                {
                    "time": r.time,
                    "kind": r.kind,
                    "worker": r.worker,
                    "tasks": r.tasks,
                    "blocks": r.blocks,
                }
                for r in result.trace.faults
            ]
    if result.faults is not None:
        payload["faults"] = asdict(result.faults)
    return json.dumps(payload)


def result_from_json(text: str) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_json` output."""
    payload = json.loads(text)
    if payload.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document (format={payload.get('format')!r})")
    trace: Optional[Trace] = None
    if payload["trace"] is not None:
        trace = Trace()
        for r in payload["trace"]:
            trace.append(
                AssignmentRecord(
                    time=r["time"],
                    worker=r["worker"],
                    blocks=r["blocks"],
                    tasks=r["tasks"],
                    duration=r["duration"],
                    phase=r["phase"],
                    task_ids=None if r["task_ids"] is None else np.asarray(r["task_ids"], dtype=np.int64),
                )
            )
        for f in payload.get("fault_events") or []:
            trace.append_fault(
                FaultRecord(
                    time=f["time"],
                    kind=f["kind"],
                    worker=f["worker"],
                    tasks=f["tasks"],
                    blocks=f["blocks"],
                )
            )
    fault_stats: Optional[FaultStats] = None
    if payload.get("faults") is not None:
        fault_stats = FaultStats(**payload["faults"])
    return SimulationResult(
        total_blocks=payload["total_blocks"],
        per_worker_blocks=np.asarray(payload["per_worker_blocks"], dtype=np.int64),
        per_worker_tasks=np.asarray(payload["per_worker_tasks"], dtype=np.int64),
        makespan=payload["makespan"],
        n_assignments=payload["n_assignments"],
        strategy_name=payload["strategy"],
        trace=trace,
        faults=fault_stats,
    )


def save_result(result: SimulationResult, path: str) -> str:
    """Write the result to *path* as JSON; returns the path."""
    with open(path, "w") as fh:
        fh.write(result_to_json(result))
    return path


def load_result(path: str) -> SimulationResult:
    """Read a result previously written by :func:`save_result`."""
    with open(path) as fh:
        return result_from_json(fh.read())
