"""Aggregate outcome of one simulation run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.simulator.trace import Trace

__all__ = ["FaultStats", "SimulationResult"]


@dataclass(frozen=True)
class FaultStats:
    """Fault/recovery accounting of one fault-aware simulation run.

    Produced by :func:`repro.faults.simulate_faulty`; all counters are zero
    for an empty fault schedule.  Defined here (not in :mod:`repro.faults`)
    so :class:`SimulationResult` can carry it without the simulator
    depending on the fault subsystem.

    Attributes
    ----------
    n_crashes / n_restarts:
        Crash and restart events that actually fired during the run.
    n_lost_assignments:
        Assignments whose allocation message was lost in transit.
    n_timeouts:
        Heartbeat deadlines that fired and released an in-flight assignment.
    wasted_blocks:
        Blocks shipped with assignments that never completed (crashed
        worker or lost allocation message).
    lost_cache_blocks:
        Cached blocks destroyed by crashes — the master's re-shipping
        exposure (an upper bound on the blocks that must travel again).
    released_tasks:
        Task allocations returned to the pool by recovery (a task released
        twice counts twice).
    reexecuted_tasks:
        Extra allocations caused by recovery: total allocated task count
        minus the kernel's task count.
    replicated_tasks:
        Duplicate tail tasks issued by a replicating policy.
    duplicate_completions:
        Task completions beyond the first (stragglers finishing after their
        work was re-issued or replicated), counted up to the run's last
        first-completion — copies still in flight when the run ends are not
        waited for.
    """

    n_crashes: int = 0
    n_restarts: int = 0
    n_lost_assignments: int = 0
    n_timeouts: int = 0
    wasted_blocks: int = 0
    lost_cache_blocks: int = 0
    released_tasks: int = 0
    reexecuted_tasks: int = 0
    replicated_tasks: int = 0
    duplicate_completions: int = 0

    @property
    def any_faults(self) -> bool:
        """True when at least one fault event fired during the run."""
        return bool(self.n_crashes or self.n_lost_assignments or self.n_timeouts)


@dataclass(frozen=True)
class SimulationResult:
    """What one run of :func:`repro.simulator.simulate` produced.

    Attributes
    ----------
    total_blocks:
        Total communication volume in blocks (the paper's metric).
    per_worker_blocks:
        Blocks shipped to each worker.
    per_worker_tasks:
        Block tasks processed by each worker.
    makespan:
        Time at which the last task completes.
    n_assignments:
        Number of master/worker interactions.
    strategy_name:
        Name of the strategy that produced the run.
    trace:
        Full assignment trace when requested, else ``None``.
    faults:
        Fault/recovery accounting when produced by the fault-aware engine
        (:func:`repro.faults.simulate_faulty`), else ``None``.
    """

    total_blocks: int
    per_worker_blocks: np.ndarray
    per_worker_tasks: np.ndarray
    makespan: float
    n_assignments: int
    strategy_name: str
    trace: Optional[Trace] = None
    faults: Optional[FaultStats] = None

    @property
    def total_tasks(self) -> int:
        """Total number of block tasks processed."""
        return int(self.per_worker_tasks.sum())

    def normalized(self, lower_bound: float) -> float:
        """Communication volume divided by a lower bound (paper's y-axis)."""
        if lower_bound <= 0:
            raise ValueError(f"lower bound must be positive, got {lower_bound}")
        return self.total_blocks / lower_bound

    def load_imbalance(self, relative_speeds: np.ndarray) -> float:
        """Max relative deviation of per-worker work from the speed-ideal.

        Demand-driven allocation should keep every worker busy until (close
        to) the end; this measures how far the realized task shares are from
        the relative speeds.
        """
        rel = np.asarray(relative_speeds, dtype=float)
        ideal = rel * self.total_tasks
        with np.errstate(divide="ignore", invalid="ignore"):
            dev = np.abs(self.per_worker_tasks - ideal) / np.maximum(ideal, 1.0)
        return float(dev.max())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult({self.strategy_name}: blocks={self.total_blocks}, "
            f"tasks={self.total_tasks}, makespan={self.makespan:.4g})"
        )
