"""Aggregate outcome of one simulation run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.simulator.trace import Trace

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """What one run of :func:`repro.simulator.simulate` produced.

    Attributes
    ----------
    total_blocks:
        Total communication volume in blocks (the paper's metric).
    per_worker_blocks:
        Blocks shipped to each worker.
    per_worker_tasks:
        Block tasks processed by each worker.
    makespan:
        Time at which the last task completes.
    n_assignments:
        Number of master/worker interactions.
    strategy_name:
        Name of the strategy that produced the run.
    trace:
        Full assignment trace when requested, else ``None``.
    """

    total_blocks: int
    per_worker_blocks: np.ndarray
    per_worker_tasks: np.ndarray
    makespan: float
    n_assignments: int
    strategy_name: str
    trace: Optional[Trace] = None

    @property
    def total_tasks(self) -> int:
        """Total number of block tasks processed."""
        return int(self.per_worker_tasks.sum())

    def normalized(self, lower_bound: float) -> float:
        """Communication volume divided by a lower bound (paper's y-axis)."""
        if lower_bound <= 0:
            raise ValueError(f"lower bound must be positive, got {lower_bound}")
        return self.total_blocks / lower_bound

    def load_imbalance(self, relative_speeds: np.ndarray) -> float:
        """Max relative deviation of per-worker work from the speed-ideal.

        Demand-driven allocation should keep every worker busy until (close
        to) the end; this measures how far the realized task shares are from
        the relative speeds.
        """
        rel = np.asarray(relative_speeds, dtype=float)
        ideal = rel * self.total_tasks
        with np.errstate(divide="ignore", invalid="ignore"):
            dev = np.abs(self.per_worker_tasks - ideal) / np.maximum(ideal, 1.0)
        return float(dev.max())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult({self.strategy_name}: blocks={self.total_blocks}, "
            f"tasks={self.total_tasks}, makespan={self.makespan:.4g})"
        )
