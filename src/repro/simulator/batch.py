"""Vectorized multi-replicate engine: R runs of one cell in lockstep.

:func:`simulate_batch` runs R replicates of the same (strategy
configuration, platform) cell and returns one
:class:`~repro.simulator.results.SimulationResult` per replicate —
**bit-identical** to R separate :func:`repro.simulator.simulate` calls
with the same generators.  When the strategy's exact type has a vector
kernel (see :mod:`repro.simulator.vector_kernels`), the replicates
advance together over (R, p) / (R, n, ·) numpy arrays; otherwise each
replicate transparently falls back to the scalar engine.
:func:`fallback_reason` names the first reason a batch cannot take the
fast path (``None`` when it can), and sweep runners record it so a
silent scalar fallback is visible in bench/report output.

Dynamic speed models no longer force the fallback: kernels replay
``model.duration`` per event on the replicate's own stream (see
:func:`~repro.simulator.vector_kernels._event_durations`), so ``dyn.*``
heterogeneity sweeps vectorize too.  Only strategy subclasses without a
kernel, per-task id collection, mixed worker counts, or custom/shared
model instances still drop to the scalar loop.

Large batches are sliced along the replicate axis: each kernel reports a
per-replicate working-set estimate and :func:`simulate_batch` runs
``ceil(R / chunk)`` kernel invocations whose state fits
*memory_budget_bytes* (default 256 MiB).  Chunking is invisible in the
results — replicates never interact, so slicing the batch is exact, not
approximate.

The scalar engine stays the oracle: nothing here changes simulation
semantics, RNG consumption or float operand order, which is what keeps
store cache entries, pinned fingerprints and recorded experiments valid
across the two code paths.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Type, Union

import numpy as np

from repro.core.strategies.base import Strategy
from repro.obs.sink import MetricsSink
from repro.platform.platform import Platform
from repro.platform.speeds import DynamicSpeedModel, SpeedModel, StaticSpeedModel
from repro.simulator.engine import simulate
from repro.simulator.results import SimulationResult
from repro.simulator.trace import AssignmentRecord, Trace
from repro.simulator.vector_kernels import BatchContext, KernelRun, kernel_for
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "DEFAULT_MEMORY_BUDGET_BYTES",
    "fallback_reason",
    "has_vector_kernel",
    "simulate_batch",
]

#: Default ceiling on kernel working-set bytes per batch; replicate
#: chunks are sized so paper-scale (R, n, n, n) bitmaps stay in RAM.
DEFAULT_MEMORY_BUDGET_BYTES = 256 * 1024 * 1024


def has_vector_kernel(strategy: Union[Strategy, Type[Strategy]]) -> bool:
    """True when *strategy*'s exact type has a vectorized batch kernel."""
    return kernel_for(strategy) is not None


def fallback_reason(
    strategy: Union[Strategy, Type[Strategy]],
    platforms: Optional[Sequence[Platform]] = None,
    speed_models: Optional[Sequence[Optional[SpeedModel]]] = None,
) -> Optional[str]:
    """Why a batch of *strategy* would fall back to the scalar engine.

    Returns ``None`` when the vectorized fast path applies, else the
    first blocking reason:

    ``"no-kernel"``
        The exact strategy type has no vector kernel (e.g. a user
        subclass — the registry never matches subclasses, since they may
        change semantics).
    ``"collect-ids"``
        Per-task id collection is a scalar-trace feature.
    ``"mixed-p"``
        Replicate platforms disagree on the worker count, so (R, p)
        state has no common shape.
    ``"custom-speed-model"``
        A speed model other than the static/dynamic library models; only
        those two have kernel-side replay contracts.
    ``"shared-speed-model"``
        One dynamic model instance serving several replicates — its
        internal state would interleave streams, which only sequential
        scalar runs order correctly.

    Sweep metadata records this string so ``vectorize="auto"`` fallbacks
    are visible rather than silent.
    """
    if kernel_for(strategy) is None:
        return "no-kernel"
    collect_ids = strategy.collect_ids if isinstance(strategy, Strategy) else False
    if collect_ids:
        return "collect-ids"
    if platforms is not None:
        if not platforms:
            return "mixed-p"
        p0 = platforms[0].p
        if any(pl.p != p0 for pl in platforms):
            return "mixed-p"
    if speed_models is not None:
        seen_dynamic: Set[int] = set()
        for model in speed_models:
            if model is None or type(model) is StaticSpeedModel:
                continue
            if type(model) is not DynamicSpeedModel:
                return "custom-speed-model"
            if id(model) in seen_dynamic:
                return "shared-speed-model"
            seen_dynamic.add(id(model))
    return None


def _supports_fast_path(
    prototype: Strategy,
    platforms: Sequence[Platform],
    models: Sequence[Optional[SpeedModel]],
) -> bool:
    """Whether the whole batch can run on the vectorized kernel."""
    return fallback_reason(prototype, platforms, models) is None


def _replay_run(
    run: KernelRun,
    prototype: Strategy,
    platform: Platform,
    collect_trace: bool,
    sink: Optional[MetricsSink],
) -> SimulationResult:
    """Fold one kernel run into a SimulationResult, replaying sink/trace.

    Events are replayed in pop order with the same scalar types the
    engine's loop would pass, so sink snapshots and traces are
    indistinguishable from a serial run's.
    """
    if sink is not None:
        sink.on_run_start(
            prototype.name,
            prototype.kernel,
            prototype.n,
            platform.p,
            [float(s) for s in platform.relative_speeds],
        )
    trace: Optional[Trace] = Trace() if collect_trace else None
    if run.events is not None:
        for now, worker, blocks, tasks, duration, phase in run.events:
            if trace is not None:
                trace.append(
                    AssignmentRecord(
                        time=now,
                        worker=worker,
                        blocks=blocks,
                        tasks=tasks,
                        duration=duration,
                        phase=phase,
                        task_ids=None,
                    )
                )
            if sink is not None:
                sink.on_assignment(now, worker, blocks, tasks, duration, phase)
    total_blocks = int(run.per_worker_blocks.sum())
    total_tasks = int(run.per_worker_tasks.sum())
    if sink is not None:
        sink.on_run_end(run.makespan, total_blocks, total_tasks, run.n_assignments)
    return SimulationResult(
        total_blocks=total_blocks,
        per_worker_blocks=run.per_worker_blocks,
        per_worker_tasks=run.per_worker_tasks,
        makespan=run.makespan,
        n_assignments=run.n_assignments,
        strategy_name=prototype.name,
        trace=trace,
    )


def simulate_batch(
    strategy_factory: Callable[[], Strategy],
    platforms: Sequence[Platform],
    *,
    rngs: Sequence[SeedLike],
    speed_models: Optional[Sequence[Optional[SpeedModel]]] = None,
    collect_trace: bool = False,
    sinks: Optional[Sequence[Optional[MetricsSink]]] = None,
    memory_budget_bytes: Optional[int] = None,
) -> List[SimulationResult]:
    """Run R replicates of one strategy cell, vectorized when possible.

    Parameters
    ----------
    strategy_factory:
        Zero-argument callable building a fresh strategy instance; called
        once for configuration on the fast path and once per replicate on
        the scalar fallback.
    platforms:
        One platform per replicate (typically R draws of the same spec).
    rngs:
        One seed/generator per replicate; each replicate consumes its
        stream exactly as a scalar :func:`~repro.simulator.simulate` call
        would.
    speed_models:
        Optional per-replicate speed models; ``None`` entries default to
        static speeds.  Static and dynamic library models vectorize;
        custom model classes (or one dynamic instance shared between
        replicates) force the scalar fallback — see
        :func:`fallback_reason`.
    collect_trace:
        Attach an :class:`~repro.simulator.trace.AssignmentRecord` trace
        to every result.
    sinks:
        Optional per-replicate metrics sinks; events are replayed to each
        in the replicate's own pop order, yielding snapshots bit-identical
        to serial runs.
    memory_budget_bytes:
        Ceiling on the kernel's replicate-scaled working set; the batch
        is sliced along R into chunks that fit (replicates never
        interact, so slicing is exact).  ``None`` uses
        :data:`DEFAULT_MEMORY_BUDGET_BYTES`.

    Returns
    -------
    list of SimulationResult
        One per replicate, in input order, bit-identical to the scalar
        engine's output for the same inputs.
    """
    R = len(platforms)
    if len(rngs) != R:
        raise ValueError(f"got {len(rngs)} rngs for {R} platforms")
    models: Sequence[Optional[SpeedModel]]
    if speed_models is None:
        models = [None] * R
    elif len(speed_models) != R:
        raise ValueError(f"got {len(speed_models)} speed models for {R} platforms")
    else:
        models = speed_models
    sink_list: Sequence[Optional[MetricsSink]]
    if sinks is None:
        sink_list = [None] * R
    elif len(sinks) != R:
        raise ValueError(f"got {len(sinks)} sinks for {R} platforms")
    else:
        sink_list = sinks
    if R == 0:
        return []
    if memory_budget_bytes is not None and memory_budget_bytes <= 0:
        raise ValueError(f"memory_budget_bytes must be positive, got {memory_budget_bytes}")

    generators = [as_generator(rng) for rng in rngs]
    prototype = strategy_factory()
    if not _supports_fast_path(prototype, platforms, models):
        return [
            simulate(
                strategy_factory(),
                platforms[r],
                rng=generators[r],
                speed_model=models[r],
                collect_trace=collect_trace,
                sink=sink_list[r],
            )
            for r in range(R)
        ]

    # Observable-state parity with the scalar engine: every model reset
    # runs up front (resets draw nothing, so chunk boundaries cannot
    # reorder stream consumption).
    for r in range(R):
        model = models[r]
        if model is not None:
            model.reset(platforms[r], generators[r])
    speeds = np.stack([np.asarray(pl.speeds, dtype=np.float64) for pl in platforms])
    want_events = collect_trace or any(s is not None for s in sink_list)
    kernel = kernel_for(prototype)
    assert kernel is not None  # _supports_fast_path checked
    budget = DEFAULT_MEMORY_BUDGET_BYTES if memory_budget_bytes is None else memory_budget_bytes
    per_rep = max(1, int(kernel.bytes_per_replicate(prototype, platforms[0].p)))
    chunk = max(1, budget // per_rep)
    runs: List[KernelRun] = []
    for lo in range(0, R, chunk):
        hi = min(R, lo + chunk)
        ctx = BatchContext(
            platforms=platforms[lo:hi],
            speeds=speeds[lo:hi],
            generators=generators[lo:hi],
            models=models[lo:hi],
            want_events=want_events,
        )
        runs.extend(kernel.run(prototype, ctx))
    return [
        _replay_run(runs[r], prototype, platforms[r], collect_trace, sink_list[r])
        for r in range(R)
    ]
