"""Vectorized multi-replicate engine: R runs of one cell in lockstep.

:func:`simulate_batch` runs R replicates of the same (strategy
configuration, platform) cell and returns one
:class:`~repro.simulator.results.SimulationResult` per replicate —
**bit-identical** to R separate :func:`repro.simulator.simulate` calls
with the same generators.  When the strategy's exact type has a vector
kernel (see :mod:`repro.simulator.vector_kernels`), the replicates
advance together over (R, p) / (R, n, ·) numpy arrays; otherwise each
replicate transparently falls back to the scalar engine.

The scalar engine stays the oracle: nothing here changes simulation
semantics, RNG consumption or float operand order, which is what keeps
store cache entries, pinned fingerprints and recorded experiments valid
across the two code paths.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Type, Union

import numpy as np

from repro.core.strategies.base import Strategy
from repro.obs.sink import MetricsSink
from repro.platform.platform import Platform
from repro.platform.speeds import SpeedModel, StaticSpeedModel
from repro.simulator.engine import simulate
from repro.simulator.results import SimulationResult
from repro.simulator.trace import AssignmentRecord, Trace
from repro.simulator.vector_kernels import KernelRun, kernel_for
from repro.utils.rng import SeedLike, as_generator

__all__ = ["simulate_batch", "has_vector_kernel"]


def has_vector_kernel(strategy: Union[Strategy, Type[Strategy]]) -> bool:
    """True when *strategy*'s exact type has a vectorized batch kernel."""
    return kernel_for(strategy) is not None


def _supports_fast_path(
    prototype: Strategy,
    platforms: Sequence[Platform],
    models: Sequence[Optional[SpeedModel]],
) -> bool:
    """Whether the whole batch can run on the vectorized kernel.

    Requires a kernel for the exact strategy type, no per-task id
    collection (ids are a scalar-trace feature), one common worker count,
    and static speeds — a :class:`DynamicSpeedModel` consumes the RNG
    stream inside the event loop, which only the scalar engine replays.
    """
    if kernel_for(prototype) is None or prototype.collect_ids:
        return False
    if not platforms:
        return False
    p0 = platforms[0].p
    if any(pl.p != p0 for pl in platforms):
        return False
    for model in models:
        if model is not None and type(model) is not StaticSpeedModel:
            return False
    return True


def _replay_run(
    run: KernelRun,
    prototype: Strategy,
    platform: Platform,
    collect_trace: bool,
    sink: Optional[MetricsSink],
) -> SimulationResult:
    """Fold one kernel run into a SimulationResult, replaying sink/trace.

    Events are replayed in pop order with the same scalar types the
    engine's loop would pass, so sink snapshots and traces are
    indistinguishable from a serial run's.
    """
    if sink is not None:
        sink.on_run_start(
            prototype.name,
            prototype.kernel,
            prototype.n,
            platform.p,
            [float(s) for s in platform.relative_speeds],
        )
    trace: Optional[Trace] = Trace() if collect_trace else None
    if run.events is not None:
        for now, worker, blocks, tasks, duration in run.events:
            if trace is not None:
                trace.append(
                    AssignmentRecord(
                        time=now,
                        worker=worker,
                        blocks=blocks,
                        tasks=tasks,
                        duration=duration,
                        phase=1,
                        task_ids=None,
                    )
                )
            if sink is not None:
                sink.on_assignment(now, worker, blocks, tasks, duration, 1)
    total_blocks = int(run.per_worker_blocks.sum())
    total_tasks = int(run.per_worker_tasks.sum())
    if sink is not None:
        sink.on_run_end(run.makespan, total_blocks, total_tasks, run.n_assignments)
    return SimulationResult(
        total_blocks=total_blocks,
        per_worker_blocks=run.per_worker_blocks,
        per_worker_tasks=run.per_worker_tasks,
        makespan=run.makespan,
        n_assignments=run.n_assignments,
        strategy_name=prototype.name,
        trace=trace,
    )


def simulate_batch(
    strategy_factory: Callable[[], Strategy],
    platforms: Sequence[Platform],
    *,
    rngs: Sequence[SeedLike],
    speed_models: Optional[Sequence[Optional[SpeedModel]]] = None,
    collect_trace: bool = False,
    sinks: Optional[Sequence[Optional[MetricsSink]]] = None,
) -> List[SimulationResult]:
    """Run R replicates of one strategy cell, vectorized when possible.

    Parameters
    ----------
    strategy_factory:
        Zero-argument callable building a fresh strategy instance; called
        once for configuration on the fast path and once per replicate on
        the scalar fallback.
    platforms:
        One platform per replicate (typically R draws of the same spec).
    rngs:
        One seed/generator per replicate; each replicate consumes its
        stream exactly as a scalar :func:`~repro.simulator.simulate` call
        would.
    speed_models:
        Optional per-replicate speed models; ``None`` entries default to
        static speeds.  Any non-static model forces the scalar fallback.
    collect_trace:
        Attach an :class:`~repro.simulator.trace.AssignmentRecord` trace
        to every result.
    sinks:
        Optional per-replicate metrics sinks; events are replayed to each
        in the replicate's own pop order, yielding snapshots bit-identical
        to serial runs.

    Returns
    -------
    list of SimulationResult
        One per replicate, in input order, bit-identical to the scalar
        engine's output for the same inputs.
    """
    R = len(platforms)
    if len(rngs) != R:
        raise ValueError(f"got {len(rngs)} rngs for {R} platforms")
    models: Sequence[Optional[SpeedModel]]
    if speed_models is None:
        models = [None] * R
    elif len(speed_models) != R:
        raise ValueError(f"got {len(speed_models)} speed models for {R} platforms")
    else:
        models = speed_models
    sink_list: Sequence[Optional[MetricsSink]]
    if sinks is None:
        sink_list = [None] * R
    elif len(sinks) != R:
        raise ValueError(f"got {len(sinks)} sinks for {R} platforms")
    else:
        sink_list = sinks
    if R == 0:
        return []

    generators = [as_generator(rng) for rng in rngs]
    prototype = strategy_factory()
    if not _supports_fast_path(prototype, platforms, models):
        return [
            simulate(
                strategy_factory(),
                platforms[r],
                rng=generators[r],
                speed_model=models[r],
                collect_trace=collect_trace,
                sink=sink_list[r],
            )
            for r in range(R)
        ]

    # Observable-state parity with the scalar engine: the model reset runs
    # even though StaticSpeedModel consumes no randomness.
    for r in range(R):
        model = models[r]
        if model is not None:
            model.reset(platforms[r], generators[r])
    speeds = np.stack([np.asarray(pl.speeds, dtype=np.float64) for pl in platforms])
    want_events = collect_trace or any(s is not None for s in sink_list)
    kernel = kernel_for(prototype)
    assert kernel is not None  # _supports_fast_path checked
    runs = kernel.run(prototype, speeds, generators, want_events)
    return [
        _replay_run(runs[r], prototype, platforms[r], collect_trace, sink_list[r])
        for r in range(R)
    ]
