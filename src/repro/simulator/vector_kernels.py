"""Vectorized per-strategy kernels for the batch replicate engine.

The batch engine (:mod:`repro.simulator.batch`) runs R replicates of one
(strategy, platform) cell at once.  Each *vector kernel* here reproduces,
bit for bit, what R independent :func:`repro.simulator.simulate` calls
would compute — same RNG consumption per replicate, same IEEE-754
operand order for every duration and timestamp, same heap tie-breaking —
but over numpy arrays instead of one Python event at a time.

Two kernel families cover six strategies:

* :class:`_TaskByTaskKernel` (RandomOuter / SortedOuter / RandomMatrix /
  SortedMatrix) — these strategies allocate exactly one task per request,
  so the whole event schedule is *analytically* reconstructible: worker
  ``w``'s ``k``-th request happens at ``k / speed_w`` (computed by the
  same repeated float addition the event loop performs, via ``cumsum``),
  and the heap's pop order is a stable sort by time with FIFO ties fixed
  up exactly (see :func:`_pop_schedule`).  Random task order is re-drawn
  with a single batched ``Generator.integers`` call per replicate, which
  numpy guarantees to be stream-identical to the scalar per-draw calls.

* the lockstep kernels (:class:`_OuterDynamicKernel` /
  :class:`_MatrixDynamicKernel`) — the Dynamic* strategies' decisions
  depend on evolving shared state, so replicates advance event by event,
  but *together*: worker-available times are an (R, p) float array,
  per-worker knowledge lives in (R, p, n) index buffers, the processed
  task bitmaps are (R, n, n[, n]) booleans, and each step's cross/shell
  marking is one padded gather/scatter across every active replicate.

Strategies without a kernel here (MapReduce*, the two-phase variants,
user subclasses) transparently fall back to per-replicate scalar
simulation in the batch engine — the registry is keyed by *exact* type,
so a subclass never silently inherits a kernel whose semantics it may
have changed.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.strategies.base import Strategy
from repro.core.strategies.matrix_dynamic import MatrixDynamic
from repro.core.strategies.matrix_random import MatrixRandom, MatrixSorted
from repro.core.strategies.outer_dynamic import OuterDynamic
from repro.core.strategies.outer_random import OuterRandom, OuterSorted
from repro.simulator.engine import LivelockError

__all__ = [
    "Event",
    "KernelRun",
    "VectorKernel",
    "kernel_for",
]

#: One simulated assignment, scalar-typed for trace/sink replay:
#: ``(time, worker, blocks, tasks, duration)``; vectorized strategies are
#: single-phase, so the phase is always 1.
Event = Tuple[float, int, int, int, float]


class KernelRun(NamedTuple):
    """One replicate's accounting, as produced by a vector kernel.

    ``events`` is populated only when the caller asked for them (trace or
    sink attached); the fields mirror :class:`~repro.simulator.results.SimulationResult`.
    """

    per_worker_blocks: np.ndarray
    per_worker_tasks: np.ndarray
    makespan: float
    n_assignments: int
    events: Optional[List[Event]]


class VectorKernel:
    """Base class of vectorized strategy kernels.

    Subclasses implement :meth:`run` as a pure function of its arguments
    (plus the generators' streams): no I/O, no module or class globals —
    the A-PURE analyzer check walks every override to enforce this, since
    the batch engine may run kernels in any process and any order.
    """

    #: Registry names of the strategies this kernel instance covers.
    strategy_name: str = ""

    def run(
        self,
        prototype: Strategy,
        speeds: np.ndarray,
        generators: Sequence[np.random.Generator],
        want_events: bool,
    ) -> List[KernelRun]:
        """Simulate one replicate per row of *speeds* ``(R, p)``.

        *prototype* is an un-reset strategy instance used only for its
        configuration (``n``); *generators* holds one per-replicate RNG,
        consumed exactly as the scalar engine would consume it.
        """
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Exact event-schedule reconstruction (task-by-task strategies)
# ---------------------------------------------------------------------------


def _heap_schedule(
    d: np.ndarray, total: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Exact per-event replay of the scalar heap, as the fallback oracle.

    Returns ``(worker_seq, pop_times, counts, makespan)`` for a run of
    *total* one-task events with per-worker durations *d*.
    """
    p = int(d.size)
    heap: List[Tuple[float, int, int]] = [(0.0, w, w) for w in range(p)]
    counts = np.zeros(p, dtype=np.int64)
    w_seq = np.empty(total, dtype=np.int64)
    pop_times = np.empty(total, dtype=np.float64)
    durations = d.tolist()
    seq = p
    makespan = 0.0
    for t in range(total):
        now, _, w = heapq.heappop(heap)
        w_seq[t] = w
        pop_times[t] = now
        counts[w] += 1
        finish = now + durations[w]
        if finish > makespan:
            makespan = finish
        heapq.heappush(heap, (finish, seq, w))
        seq += 1
    return w_seq, pop_times, counts, makespan


def _fifo_fix(
    flat: np.ndarray, order: np.ndarray, total: int, p: int
) -> Optional[np.ndarray]:
    """Reorder equal-time runs of *order* into the heap's exact FIFO order.

    ``flat[k * p + w]`` is worker ``w``'s ``k``-th pop time and *order* a
    stable argsort of it.  Within a tied run the heap pops by insertion
    sequence: a ``k == 0`` event carries sequence ``w`` and a later event
    carries ``p +`` (the pop position of the same worker's previous
    event) — predecessors finish strictly earlier, so their positions are
    already final when a run is processed left to right.  Returns the
    first *total* event ids in pop order, or ``None`` in the pathological
    case of one worker appearing twice at one timestamp (``fl(t + d) ==
    t`` under extreme speed ratios), where the caller must replay the
    heap exactly.
    """
    t_sorted = flat[order]
    m = int(t_sorted.size)
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    np.not_equal(t_sorted[1:], t_sorted[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    pos = np.empty(m, dtype=np.int64)
    pos[order] = np.arange(m, dtype=np.int64)
    ends = np.append(starts[1:], m)
    for a, b in zip(starts.tolist(), ends.tolist()):
        if a >= total:
            # Runs are time-ordered; every event before the cut is final.
            break
        if b - a == 1:
            continue
        ids = order[a:b]
        w = ids % p
        if np.unique(w).size != w.size:
            return None
        keys = np.where(ids < p, w - p, pos[ids - p])
        sub = np.argsort(keys, kind="stable")
        reordered = ids[sub]
        order[a:b] = reordered
        pos[reordered] = np.arange(a, b, dtype=np.int64)
    return order[:total]


def _pop_schedule(
    d: np.ndarray, total: int, k0: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """The scalar engine's exact pop schedule for a one-task-per-event run.

    Worker ``w`` pops at times ``0, fl(d_w), fl(fl(d_w) + d_w), ...`` —
    ``cumsum`` performs the identical sequential float additions — and the
    heap serves pops in (time, FIFO) order.  *k0* bounds the per-worker
    event count considered; it is estimated from the speed mix and grown
    geometrically when a worker saturates it (exposed for tests).

    Returns ``(worker_seq, pop_times, counts, makespan)``.
    """
    p = int(d.size)
    if k0 is None:
        rates = 1.0 / d
        k0 = int(total * float(rates.max()) / float(rates.sum()) * 1.15) + 16
    k0 = max(1, min(int(k0), total))
    while True:
        times = np.empty((k0 + 1, p), dtype=np.float64)
        times[0] = 0.0
        times[1:] = d
        np.cumsum(times, axis=0, out=times)
        flat = times[:k0].reshape(-1)
        order = np.argsort(flat, kind="stable")
        fixed = _fifo_fix(flat, order, total, p)
        if fixed is None:
            return _heap_schedule(d, total)
        w_seq = fixed % p
        counts = np.bincount(w_seq, minlength=p)
        if int(counts.max(initial=0)) >= k0 and k0 < total:
            # A worker consumed every generated slot: later events of its
            # column may belong inside the cut.  Regrow and redo.
            k0 = min(total, k0 * 2)
            continue
        pop_times = flat[fixed]
        makespan = float(times[counts, np.arange(p)][counts > 0].max())
        return w_seq.astype(np.int64), pop_times, counts.astype(np.int64), makespan


def _replay_draws(universe: int, idx: np.ndarray) -> np.ndarray:
    """Map pre-drawn swap-remove indices to drawn values.

    Replays :meth:`repro.taskpool.sample_set.SampleSet.draw`'s swap-remove
    on a full set of *universe* elements, with the per-draw uniform
    indices *idx* already consumed from the RNG in one batched call.
    """
    items = list(range(universe))
    out = np.empty(universe, dtype=np.int64)
    size = universe
    for t, pick in enumerate(idx.tolist()):
        v = items[pick]
        size -= 1
        items[pick] = items[size]
        out[t] = v
    return out


class _TaskByTaskKernel(VectorKernel):
    """Analytic kernel for the four one-task-per-request strategies.

    The schedule never depends on the task drawn (every assignment lasts
    ``1 / speed_w``), so pop order, task order and block accounting
    decouple: the pop schedule comes from :func:`_pop_schedule`, the task
    order from one batched RNG draw (or ``arange`` for the Sorted*
    variants), and per-worker distinct-block counts from boolean scatters
    over (worker, block) key spaces.
    """

    def __init__(self, kernel: str, random_order: bool, strategy_name: str) -> None:
        self._kernel = kernel
        self._random = random_order
        self.strategy_name = strategy_name

    def run(
        self,
        prototype: Strategy,
        speeds: np.ndarray,
        generators: Sequence[np.random.Generator],
        want_events: bool,
    ) -> List[KernelRun]:
        n = prototype.n
        p = int(speeds.shape[1])
        total = n * n if self._kernel == "outer" else n**3
        runs: List[KernelRun] = []
        for r in range(int(speeds.shape[0])):
            d = 1.0 / speeds[r]
            w_seq, pop_times, counts, makespan = _pop_schedule(d, total)
            if self._random:
                # Bit-identical to `total` successive rng.integers(size)
                # calls with shrinking bounds (numpy's array-high path
                # consumes the stream exactly like the scalar path).
                idx = generators[r].integers(np.arange(total, 0, -1, dtype=np.int64))
                task_seq = _replay_draws(total, idx)
            else:
                task_seq = np.arange(total, dtype=np.int64)
            runs.append(
                self._account(n, p, total, d, w_seq, pop_times, counts, makespan, task_seq, want_events)
            )
        return runs

    def _operand_keys(
        self, n: int, w_seq: np.ndarray, task_seq: np.ndarray
    ) -> Tuple[np.ndarray, ...]:
        """(worker, block) keys per operand cache, in cache-add order."""
        if self._kernel == "outer":
            i, j = np.divmod(task_seq, n)
            base = w_seq * n
            return (base + i, base + j)
        ij, k = np.divmod(task_seq, n)
        i, j = np.divmod(ij, n)
        base = w_seq * (n * n)
        return (base + i * n + k, base + k * n + j, base + i * n + j)

    def _account(
        self,
        n: int,
        p: int,
        total: int,
        d: np.ndarray,
        w_seq: np.ndarray,
        pop_times: np.ndarray,
        counts: np.ndarray,
        makespan: float,
        task_seq: np.ndarray,
        want_events: bool,
    ) -> KernelRun:
        """Fold one replicate's schedule + task order into a KernelRun."""
        block_space = n if self._kernel == "outer" else n * n
        keys = self._operand_keys(n, w_seq, task_seq)
        per_blocks = np.zeros(p, dtype=np.int64)
        for key in keys:
            seen = np.zeros(p * block_space, dtype=bool)
            seen[key] = True
            per_blocks += seen.reshape(p, block_space).sum(axis=1)
        events: Optional[List[Event]] = None
        if want_events:
            per_event = np.zeros(total, dtype=np.int64)
            for key in keys:
                first = np.zeros(total, dtype=bool)
                first[np.unique(key, return_index=True)[1]] = True
                per_event += first
            durations = d[w_seq]
            events = list(
                zip(
                    pop_times.tolist(),
                    w_seq.tolist(),
                    per_event.tolist(),
                    [1] * total,
                    durations.tolist(),
                )
            )
        return KernelRun(per_blocks, counts, makespan, total, events)


# ---------------------------------------------------------------------------
# Lockstep kernels (Dynamic* strategies)
# ---------------------------------------------------------------------------

_SEQ_HUGE = np.iinfo(np.int64).max


def _select_workers(
    times: np.ndarray, seqs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-replicate heap pop: ``(now, worker)`` minimizing (time, seq)."""
    now = times.min(axis=1)
    masked = np.where(times == now[:, None], seqs, _SEQ_HUGE)
    return now, masked.argmin(axis=1)


def _batched_dim_draws(
    generators: Sequence[np.random.Generator],
    act: np.ndarray,
    need: np.ndarray,
    sizes: np.ndarray,
) -> np.ndarray:
    """Per-replicate uniform indices for this step's dimension draws.

    *need* is ``(dims, A)`` (which dimensions each active replicate grows)
    and *sizes* the matching unknown-set sizes.  Each replicate's 1-3
    bounded draws collapse into one ``Generator.integers`` call with an
    array of highs — stream-identical to the scalar per-dimension calls.
    """
    dims = need.shape[0]
    out = np.full(need.shape, -1, dtype=np.int64)
    for g in np.flatnonzero(need.any(axis=0)).tolist():
        gen = generators[int(act[g])]
        which = [dim for dim in range(dims) if need[dim, g]]
        if len(which) == 1:
            out[which[0], g] = int(gen.integers(int(sizes[which[0], g])))
        else:
            highs = np.array([int(sizes[dim, g]) for dim in which], dtype=np.int64)
            drawn = gen.integers(highs)
            for slot, dim in enumerate(which):
                out[dim, g] = int(drawn[slot])
    return out


def _draw_values(
    items: np.ndarray,
    order: np.ndarray,
    cnt: np.ndarray,
    n: int,
    act: np.ndarray,
    wsel: np.ndarray,
    need: np.ndarray,
    draw_idx: np.ndarray,
) -> np.ndarray:
    """Swap-remove the drawn indices out of each unknown set, vectorized.

    Mirrors ``IndexKnowledge.draw_unknown``: the drawn value is recorded
    in insertion order (*order*) and the unknown buffer (*items*) closes
    the hole with its last live element.  Returns the ``(dims, A)`` drawn
    values (-1 where nothing was drawn).
    """
    dims = need.shape[0]
    vals = np.full(need.shape, -1, dtype=np.int64)
    for dim in range(dims):
        grp = np.flatnonzero(need[dim])
        if grp.size == 0:
            continue
        rg = act[grp]
        wg = wsel[grp]
        size = n - cnt[dim, rg, wg]
        ix = draw_idx[dim, grp]
        v = items[dim, rg, wg, ix]
        items[dim, rg, wg, ix] = items[dim, rg, wg, size - 1]
        vals[dim, grp] = v
        order[dim, rg, wg, cnt[dim, rg, wg]] = v
        cnt[dim, rg, wg] += 1
    return vals


class _LockstepAccumulator:
    """Shared per-step bookkeeping of the lockstep Dynamic* kernels.

    Owns the event-queue mirror ((R, p) times + insertion sequences), the
    per-worker accumulators and the livelock guard, and finalizes the
    per-replicate :class:`KernelRun` list — everything that is identical
    between the outer and matrix variants.
    """

    def __init__(self, strategy_name: str, R: int, p: int, n: int, want_events: bool) -> None:
        self.name = strategy_name
        self.times = np.zeros((R, p), dtype=np.float64)
        self.seqs = np.tile(np.arange(p, dtype=np.int64), (R, 1))
        self.next_seq = np.full(R, p, dtype=np.int64)
        self.blocks_acc = np.zeros((R, p), dtype=np.int64)
        self.tasks_acc = np.zeros((R, p), dtype=np.int64)
        self.makespan = np.zeros(R, dtype=np.float64)
        self.n_events = np.zeros(R, dtype=np.int64)
        self.streak = np.zeros(R, dtype=np.int64)
        self.budget = 4 * (3 * n + 2) * p + 1024
        self.events: Optional[List[List[Event]]] = (
            [[] for _ in range(R)] if want_events else None
        )

    def pop(self, act: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return _select_workers(self.times[act], self.seqs[act])

    def commit(
        self,
        act: np.ndarray,
        wsel: np.ndarray,
        now: np.ndarray,
        speeds: np.ndarray,
        blocks: np.ndarray,
        tasks: np.ndarray,
    ) -> None:
        """Account one popped event per active replicate, scalar-exactly."""
        duration = tasks / speeds[act, wsel]
        finish = now + duration
        progressed = tasks > 0
        grew = act[progressed]
        self.makespan[grew] = np.maximum(self.makespan[grew], finish[progressed])
        self.streak[act] = np.where(progressed, 0, self.streak[act] + 1)
        if bool((self.streak[act] > self.budget).any()):
            worst = int(self.streak[act].max())
            raise LivelockError(
                f"{worst} consecutive zero-task assignments "
                f"(strategy={self.name}, remaining tasks unallocated)"
            )
        self.blocks_acc[act, wsel] += blocks
        self.tasks_acc[act, wsel] += tasks
        self.n_events[act] += 1
        self.times[act, wsel] = finish
        self.seqs[act, wsel] = self.next_seq[act]
        self.next_seq[act] += 1
        if self.events is not None:
            now_l = now.tolist()
            w_l = wsel.tolist()
            b_l = blocks.tolist()
            t_l = tasks.tolist()
            d_l = duration.tolist()
            for g, r in enumerate(act.tolist()):
                self.events[r].append((now_l[g], w_l[g], b_l[g], t_l[g], d_l[g]))

    def finish(self) -> List[KernelRun]:
        runs: List[KernelRun] = []
        for r in range(self.times.shape[0]):
            runs.append(
                KernelRun(
                    self.blocks_acc[r].copy(),
                    self.tasks_acc[r].copy(),
                    float(self.makespan[r]),
                    int(self.n_events[r]),
                    None if self.events is None else self.events[r],
                )
            )
        return runs


class _OuterDynamicKernel(VectorKernel):
    """Lockstep kernel for DynamicOuter (Algorithm 1), R replicates at once."""

    strategy_name = "DynamicOuter"

    def run(
        self,
        prototype: Strategy,
        speeds: np.ndarray,
        generators: Sequence[np.random.Generator],
        want_events: bool,
    ) -> List[KernelRun]:
        n = prototype.n
        R, p = int(speeds.shape[0]), int(speeds.shape[1])
        acc = _LockstepAccumulator(self.strategy_name, R, p, n, want_events)
        processed = np.zeros((R, n, n), dtype=bool)
        remaining = np.full(R, n * n, dtype=np.int64)
        # Two knowledge dimensions (rows of a, columns of b) per worker:
        # unknown-set buffers, insertion-order buffers and known counts.
        items = np.broadcast_to(np.arange(n, dtype=np.int64), (2, R, p, n)).copy()
        order = np.zeros((2, R, p, n), dtype=np.int64)
        cnt = np.zeros((2, R, p), dtype=np.int64)
        act = np.arange(R, dtype=np.int64)
        while act.size:
            now, wsel = acc.pop(act)
            A = int(act.size)
            prev = cnt[:, act, wsel]  # (2, A) counts before this step's draws
            complete = (prev[0] >= n) & (prev[1] >= n)
            tasks = np.zeros(A, dtype=np.int64)
            for g in np.flatnonzero(complete).tolist():
                r = int(act[g])
                tasks[g] = remaining[r]
                processed[r] = True
            need = np.empty((2, A), dtype=bool)
            need[0] = ~complete & (prev[0] < n)
            need[1] = ~complete & (prev[1] < n)
            sizes = n - prev
            draw_idx = _batched_dim_draws(generators, act, need, sizes)
            vals = _draw_values(items, order, cnt, n, act, wsel, need, draw_idx)
            iv, jv = vals[0], vals[1]
            # Cross marking, three disjoint pieces (center, row arm over the
            # previous columns, column arm over the previous rows).
            center = np.flatnonzero(need[0] & need[1])
            if center.size:
                rg = act[center]
                fresh = ~processed[rg, iv[center], jv[center]]
                processed[rg, iv[center], jv[center]] = True
                tasks[center] += fresh.astype(np.int64)
            tasks += _mark_arm(processed, order[1], act, wsel, need[0] & (prev[1] > 0), prev[1], iv, axis=0)
            tasks += _mark_arm(processed, order[0], act, wsel, need[1] & (prev[0] > 0), prev[0], jv, axis=1)
            blocks = need[0].astype(np.int64) + need[1].astype(np.int64)
            remaining[act] -= tasks
            acc.commit(act, wsel, now, speeds, blocks, tasks)
            act = act[remaining[act] > 0]
        return acc.finish()


def _mark_arm(
    processed: np.ndarray,
    arm_order: np.ndarray,
    act: np.ndarray,
    wsel: np.ndarray,
    grp_mask: np.ndarray,
    arm_counts: np.ndarray,
    fixed: np.ndarray,
    axis: int,
) -> np.ndarray:
    """Mark one arm of the DynamicOuter cross across replicates.

    For every replicate in *grp_mask*, marks the unprocessed tasks pairing
    the freshly drawn index *fixed* against the worker's previously-known
    indices of the other dimension (*arm_order* rows, *arm_counts* live
    prefix lengths).  Rows across replicates are padded to the longest
    prefix and masked.  Returns the newly-marked count per active slot.
    """
    out = np.zeros(act.size, dtype=np.int64)
    grp = np.flatnonzero(grp_mask)
    if grp.size == 0:
        return out
    rg = act[grp]
    wg = wsel[grp]
    width = int(arm_counts[grp].max())
    pad = arm_order[rg, wg, :width]
    valid = np.arange(width) < arm_counts[grp][:, None]
    rep = np.broadcast_to(rg[:, None], pad.shape)
    fix = np.broadcast_to(fixed[grp][:, None], pad.shape)
    if axis == 0:
        current = processed[rep, fix, pad]
    else:
        current = processed[rep, pad, fix]
    fresh = valid & ~current
    if axis == 0:
        processed[rep[fresh], fix[fresh], pad[fresh]] = True
    else:
        processed[rep[fresh], pad[fresh], fix[fresh]] = True
    out[grp] = fresh.sum(axis=1)
    return out


class _MatrixDynamicKernel(VectorKernel):
    """Lockstep kernel for DynamicMatrix (Algorithm 3), R replicates at once."""

    strategy_name = "DynamicMatrix"

    def run(
        self,
        prototype: Strategy,
        speeds: np.ndarray,
        generators: Sequence[np.random.Generator],
        want_events: bool,
    ) -> List[KernelRun]:
        n = prototype.n
        R, p = int(speeds.shape[0]), int(speeds.shape[1])
        acc = _LockstepAccumulator(self.strategy_name, R, p, n, want_events)
        processed = np.zeros((R, n, n, n), dtype=bool)
        remaining = np.full(R, n**3, dtype=np.int64)
        items = np.broadcast_to(np.arange(n, dtype=np.int64), (3, R, p, n)).copy()
        order = np.zeros((3, R, p, n), dtype=np.int64)
        cnt = np.zeros((3, R, p), dtype=np.int64)
        act = np.arange(R, dtype=np.int64)
        while act.size:
            now, wsel = acc.pop(act)
            A = int(act.size)
            prev = cnt[:, act, wsel]  # (3, A): |I|, |J|, |K| before the draws
            complete = (prev >= n).all(axis=0)
            tasks = np.zeros(A, dtype=np.int64)
            for g in np.flatnonzero(complete).tolist():
                r = int(act[g])
                tasks[g] = remaining[r]
                processed[r] = True
            need = ~complete & (prev < n)  # (3, A), draw order i, j, k
            sizes = n - prev
            draw_idx = _batched_dim_draws(generators, act, need, sizes)
            vals = _draw_values(items, order, cnt, n, act, wsel, need, draw_idx)
            grew = need.astype(np.int64)
            # Shipped blocks: growth of the A (I x K), B (K x J), C (I x J)
            # rectangles — the vectorized _grown_blocks arithmetic.
            blocks = (
                ((prev[0] + grew[0]) * (prev[2] + grew[2]) - prev[0] * prev[2])
                + ((prev[2] + grew[2]) * (prev[1] + grew[1]) - prev[2] * prev[1])
                + ((prev[0] + grew[0]) * (prev[1] + grew[1]) - prev[0] * prev[1])
            )
            # Shell marking: three disjoint slabs of the grown cube.
            grown_j = prev[1] + grew[1]
            grown_k = prev[2] + grew[2]
            tasks += _mark_slab(
                processed, act, need[0] & (grown_j > 0) & (grown_k > 0),
                _fixed_plane(vals[0], 0),
                (order[1], grown_j), (order[2], grown_k), wsel,
            )
            tasks += _mark_slab(
                processed, act, need[1] & (prev[0] > 0) & (grown_k > 0),
                _fixed_plane(vals[1], 1),
                (order[0], prev[0]), (order[2], grown_k), wsel,
            )
            tasks += _mark_slab(
                processed, act, need[2] & (prev[0] > 0) & (prev[1] > 0),
                _fixed_plane(vals[2], 2),
                (order[0], prev[0]), (order[1], prev[1]), wsel,
            )
            remaining[act] -= tasks
            acc.commit(act, wsel, now, speeds, blocks, tasks)
            act = act[remaining[act] > 0]
        return acc.finish()


def _fixed_plane(vals: np.ndarray, dim: int) -> Tuple[np.ndarray, int]:
    """The (values, cube axis) of a slab's fixed index."""
    return vals, dim


def _mark_slab(
    processed: np.ndarray,
    act: np.ndarray,
    grp_mask: np.ndarray,
    fixed: Tuple[np.ndarray, int],
    span_a: Tuple[np.ndarray, np.ndarray],
    span_b: Tuple[np.ndarray, np.ndarray],
    wsel: np.ndarray,
) -> np.ndarray:
    """Mark one DynamicMatrix shell slab across replicates.

    The slab fixes one cube axis to a freshly drawn index and spans the
    other two axes with per-worker index prefixes (padded to the longest
    prefix across the group and masked).  The three slabs of a shell are
    disjoint by construction, so gathers never see a sibling's scatter.
    Returns the newly-marked count per active slot.
    """
    out = np.zeros(act.size, dtype=np.int64)
    grp = np.flatnonzero(grp_mask)
    if grp.size == 0:
        return out
    rg = act[grp]
    wg = wsel[grp]
    fixed_vals, fixed_axis = fixed
    order_a, len_a = span_a
    order_b, len_b = span_b
    wa = int(len_a[grp].max())
    wb = int(len_b[grp].max())
    pad_a = order_a[rg, wg, :wa]  # (G, wa)
    pad_b = order_b[rg, wg, :wb]  # (G, wb)
    valid = (np.arange(wa) < len_a[grp][:, None])[:, :, None] & (
        np.arange(wb) < len_b[grp][:, None]
    )[:, None, :]
    shape = (int(grp.size), wa, wb)
    rep = np.broadcast_to(rg[:, None, None], shape)
    fix = np.broadcast_to(fixed_vals[grp][:, None, None], shape)
    a_idx = np.broadcast_to(pad_a[:, :, None], shape)
    b_idx = np.broadcast_to(pad_b[:, None, :], shape)
    # Map (fixed, span_a, span_b) onto cube axes (i, j, k).
    if fixed_axis == 0:
        i_idx, j_idx, k_idx = fix, a_idx, b_idx
    elif fixed_axis == 1:
        i_idx, j_idx, k_idx = a_idx, fix, b_idx
    else:
        i_idx, j_idx, k_idx = a_idx, b_idx, fix
    current = processed[rep, i_idx, j_idx, k_idx]
    fresh = valid & ~current
    processed[rep[fresh], i_idx[fresh], j_idx[fresh], k_idx[fresh]] = True
    out[grp] = fresh.sum(axis=(1, 2))
    return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Exact-type kernel registry.  Keyed by ``type(strategy)`` — never
#: ``isinstance`` — so strategy subclasses (which may change semantics)
#: safely fall back to per-replicate scalar simulation.
_KERNELS: Dict[Type[Strategy], VectorKernel] = {
    OuterRandom: _TaskByTaskKernel("outer", True, "RandomOuter"),
    OuterSorted: _TaskByTaskKernel("outer", False, "SortedOuter"),
    MatrixRandom: _TaskByTaskKernel("matrix", True, "RandomMatrix"),
    MatrixSorted: _TaskByTaskKernel("matrix", False, "SortedMatrix"),
    OuterDynamic: _OuterDynamicKernel(),
    MatrixDynamic: _MatrixDynamicKernel(),
}


def kernel_for(strategy: "Strategy | Type[Strategy]") -> Optional[VectorKernel]:
    """The vector kernel covering *strategy*'s exact type, or ``None``."""
    cls = strategy if isinstance(strategy, type) else type(strategy)
    return _KERNELS.get(cls)
