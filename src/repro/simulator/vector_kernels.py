"""Vectorized per-strategy kernels for the batch replicate engine.

The batch engine (:mod:`repro.simulator.batch`) runs R replicates of one
(strategy, platform) cell at once.  Each *vector kernel* here reproduces,
bit for bit, what R independent :func:`repro.simulator.simulate` calls
would compute — same RNG consumption per replicate, same IEEE-754
operand order for every duration and timestamp, same heap tie-breaking —
but over numpy arrays instead of one Python event at a time.

Three kernel families cover all ten registry strategies:

* :class:`_TaskByTaskKernel` (RandomOuter / SortedOuter / RandomMatrix /
  SortedMatrix / MapReduceOuter / MapReduceMatrix) — these strategies
  allocate exactly one task per request, so under static speeds the whole
  event schedule is *analytically* reconstructible: worker ``w``'s
  ``k``-th request happens at ``k / speed_w`` (computed by the same
  repeated float addition the event loop performs, via ``cumsum``), and
  the heap's pop order is a stable sort by time with FIFO ties fixed up
  exactly (see :func:`_pop_schedule`).  Random task order is re-drawn
  with a single batched ``Generator.integers`` call per replicate, which
  numpy guarantees to be stream-identical to the scalar per-draw calls.
  The MapReduce variants are the degenerate cached-nothing case: a
  constant 2 (outer) or 3 (matmul) blocks ship with every task.

* the lockstep kernels (:class:`_OuterDynamicKernel` /
  :class:`_MatrixDynamicKernel`) — the Dynamic* strategies' decisions
  depend on evolving shared state, so replicates advance event by event,
  but *together*: worker-available times are an (R, p) float array,
  per-worker knowledge lives in (R, p, n) index buffers, the processed
  task bitmaps are (R, n, n[, n]) booleans, and each step's cross/shell
  marking is one padded gather/scatter across every active replicate.

* the two-phase kernels (:class:`_TwoPhaseKernel`, covering
  DynamicOuter2Phases / DynamicMatrix2Phases) — phase 1 *is* the
  lockstep Dynamic* loop (the state machinery is shared); each replicate
  independently crosses its ``e^{-beta}``-remaining threshold, freezing
  its knowledge into per-worker boolean block caches and a swap-remove
  sampler replay, after which its events follow the single-task phase-2
  path.  Replicates in different phases advance through the same (R, p)
  event queue side by side.

Dynamic speed models (``dyn.*``) no longer force the scalar engine:
strategy-side state stays vectorized across the replicate axis while
each event's duration replays ``model.duration`` on the replicate's own
stream, in pop order — exactly the call the scalar loop makes after each
assignment (see :func:`_event_durations`).

Strategies without a kernel here (user subclasses) transparently fall
back to per-replicate scalar simulation in the batch engine — the
registry is keyed by *exact* type, so a subclass never silently inherits
a kernel whose semantics it may have changed.  Kernels also advertise a
per-replicate working-set estimate (:meth:`VectorKernel.bytes_per_replicate`)
that the batch engine uses to chunk the replicate axis under a memory
budget, keeping paper-scale ``(R, n, n, n)`` bitmaps in RAM.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.strategies.base import Strategy
from repro.core.strategies.mapreduce import MatrixMapReduce, OuterMapReduce
from repro.core.strategies.matrix_dynamic import MatrixDynamic
from repro.core.strategies.matrix_random import MatrixRandom, MatrixSorted
from repro.core.strategies.matrix_two_phase import MatrixTwoPhase
from repro.core.strategies.outer_dynamic import OuterDynamic
from repro.core.strategies.outer_random import OuterRandom, OuterSorted
from repro.core.strategies.outer_two_phase import OuterTwoPhase
from repro.platform.platform import Platform
from repro.platform.speeds import SpeedModel, StaticSpeedModel
from repro.simulator.engine import LivelockError

__all__ = [
    "BatchContext",
    "Event",
    "KernelRun",
    "VectorKernel",
    "kernel_for",
]

#: One simulated assignment, scalar-typed for trace/sink replay:
#: ``(time, worker, blocks, tasks, duration, phase)``.
Event = Tuple[float, int, int, int, float, int]


class BatchContext(NamedTuple):
    """Per-batch inputs a kernel consumes besides the strategy prototype.

    ``speeds`` is the (R, p) float64 stack of ``platforms[r].speeds``;
    ``models`` holds the per-replicate speed models (already ``reset`` by
    the batch engine, ``None`` meaning static platform speeds).
    """

    platforms: Sequence[Platform]
    speeds: np.ndarray
    generators: Sequence[np.random.Generator]
    models: Sequence[Optional[SpeedModel]]
    want_events: bool


class KernelRun(NamedTuple):
    """One replicate's accounting, as produced by a vector kernel.

    ``events`` is populated only when the caller asked for them (trace or
    sink attached); the fields mirror :class:`~repro.simulator.results.SimulationResult`.
    """

    per_worker_blocks: np.ndarray
    per_worker_tasks: np.ndarray
    makespan: float
    n_assignments: int
    events: Optional[List[Event]]


class VectorKernel:
    """Base class of vectorized strategy kernels.

    Subclasses implement :meth:`run` as a pure function of its arguments
    (plus the generators' streams): no I/O, no module or class globals —
    the A-PURE analyzer check walks every override to enforce this, since
    the batch engine may run kernels in any process and any order.
    """

    #: Registry names of the strategies this kernel instance covers.
    strategy_name: str = ""

    def run(self, prototype: Strategy, ctx: BatchContext) -> List[KernelRun]:
        """Simulate one replicate per row of ``ctx.speeds`` ``(R, p)``.

        *prototype* is an un-reset strategy instance used only for its
        configuration (``n``, threshold parameters); ``ctx.generators``
        holds one per-replicate RNG, consumed exactly as the scalar
        engine would consume it.
        """
        raise NotImplementedError

    def bytes_per_replicate(self, prototype: Strategy, p: int) -> int:
        """Rough working-set bytes one replicate adds to a batch.

        Only state that scales with the replicate axis counts (bitmaps,
        knowledge buffers, sampler replays) — transient per-replicate
        temporaries of a serial inner loop do not.  The batch engine
        divides its memory budget by this to size replicate chunks.
        """
        return 1024


# ---------------------------------------------------------------------------
# Shared duration replay (static division / dynamic model calls)
# ---------------------------------------------------------------------------


def _replay_models(
    models: Sequence[Optional[SpeedModel]],
) -> Optional[List[Optional[SpeedModel]]]:
    """Per-replicate models whose ``duration`` must be replayed per event.

    ``None`` when every replicate runs on static speeds (the common
    case): durations then come from the one vectorized division in
    :func:`_event_durations` with zero per-event Python work.
    """
    out = [
        model if model is not None and type(model) is not StaticSpeedModel else None
        for model in models
    ]
    return out if any(model is not None for model in out) else None


def _event_durations(
    speeds: np.ndarray,
    replay: Optional[List[Optional[SpeedModel]]],
    act: np.ndarray,
    wsel: np.ndarray,
    tasks: np.ndarray,
) -> np.ndarray:
    """Durations of one popped event per active replicate, scalar-exactly.

    Static replicates use the same ``tasks / speed`` float division the
    scalar engine inlines.  Replicates with a dynamic model instead call
    ``model.duration(worker, tasks)`` on the replicate's own stream —
    after the step's strategy draws, exactly where the scalar loop calls
    it — so RNG consumption and the evolving per-worker speeds match the
    oracle bit for bit.
    """
    durations = tasks / speeds[act, wsel]
    if replay is not None:
        w_l = wsel.tolist()
        t_l = tasks.tolist()
        for g, r in enumerate(act.tolist()):
            model = replay[r]
            if model is not None:
                durations[g] = model.duration(w_l[g], t_l[g])
    return durations


# ---------------------------------------------------------------------------
# Exact event-schedule reconstruction (task-by-task strategies)
# ---------------------------------------------------------------------------


def _heap_schedule(
    d: np.ndarray,
    total: int,
    t0: Optional[np.ndarray] = None,
    rank0: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Exact per-event replay of the scalar heap, as the fallback oracle.

    Returns ``(worker_seq, pop_times, counts, makespan)`` for a run of
    *total* one-task events with per-worker durations *d*.  *t0* gives
    each worker's pending event time (default: all zero, a fresh run) and
    *rank0* the FIFO rank of that pending event (default: worker order) —
    together they resume the heap mid-run, as phase 2 of the two-phase
    strategies needs.
    """
    p = int(d.size)
    start = [0.0] * p if t0 is None else t0.tolist()
    ranks = list(range(p)) if rank0 is None else rank0.tolist()
    heap: List[Tuple[float, int, int]] = sorted(
        (start[w], ranks[w], w) for w in range(p)
    )
    counts = np.zeros(p, dtype=np.int64)
    w_seq = np.empty(total, dtype=np.int64)
    pop_times = np.empty(total, dtype=np.float64)
    durations = d.tolist()
    seq = p
    makespan = 0.0
    for t in range(total):
        now, _, w = heapq.heappop(heap)
        w_seq[t] = w
        pop_times[t] = now
        counts[w] += 1
        finish = now + durations[w]
        if finish > makespan:
            makespan = finish
        heapq.heappush(heap, (finish, seq, w))
        seq += 1
    return w_seq, pop_times, counts, makespan


def _fifo_fix(
    flat: np.ndarray,
    order: np.ndarray,
    total: int,
    p: int,
    rank0: Optional[np.ndarray] = None,
) -> Optional[np.ndarray]:
    """Reorder equal-time runs of *order* into the heap's exact FIFO order.

    ``flat[k * p + w]`` is worker ``w``'s ``k``-th pop time and *order* a
    stable argsort of it.  Within a tied run the heap pops by insertion
    sequence: a ``k == 0`` event carries sequence ``rank0[w]`` (worker
    order for a fresh run, the pending events' insertion ranks when
    resuming mid-run) and a later event carries ``p +`` (the pop position
    of the same worker's previous event) — predecessors finish strictly
    earlier, so their positions are already final when a run is processed
    left to right.  Returns the first *total* event ids in pop order, or
    ``None`` in the pathological case of one worker appearing twice at
    one timestamp (``fl(t + d) == t`` under extreme speed ratios), where
    the caller must replay the heap exactly.
    """
    t_sorted = flat[order]
    m = int(t_sorted.size)
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    np.not_equal(t_sorted[1:], t_sorted[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    ends = np.append(starts[1:], m)
    # Runs are time-ordered; only tied runs before the cut need fixing,
    # and with continuous speeds there usually are none.
    multi = np.flatnonzero((ends - starts > 1) & (starts < total))
    if multi.size == 0:
        return order[:total]
    pos = np.empty(m, dtype=np.int64)
    pos[order] = np.arange(m, dtype=np.int64)
    for a, b in zip(starts[multi].tolist(), ends[multi].tolist()):
        ids = order[a:b]
        w = ids % p
        if np.unique(w).size != w.size:
            return None
        first_key = w if rank0 is None else rank0[w]
        keys = np.where(ids < p, first_key - p, pos[ids - p])
        sub = np.argsort(keys, kind="stable")
        reordered = ids[sub]
        order[a:b] = reordered
        pos[reordered] = np.arange(a, b, dtype=np.int64)
    return order[:total]


def _pop_schedule(
    d: np.ndarray,
    total: int,
    k0: Optional[int] = None,
    t0: Optional[np.ndarray] = None,
    rank0: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """The scalar engine's exact pop schedule for a one-task-per-event run.

    Worker ``w`` pops at times ``t0_w, fl(t0_w + d_w), ...`` (*t0* zero
    for a fresh run) — ``cumsum`` performs the identical sequential float
    additions — and the heap serves pops in (time, FIFO) order, with
    *rank0* giving the pending events' insertion ranks when resuming a
    run mid-heap (phase 2 of the two-phase strategies).  *k0* bounds the
    per-worker event count considered; it is estimated from the speed mix
    and grown geometrically when a worker saturates it (exposed for
    tests).

    Returns ``(worker_seq, pop_times, counts, makespan)``.
    """
    p = int(d.size)
    if k0 is None:
        rates = 1.0 / d
        k0 = int(total * float(rates.max()) / float(rates.sum()) * 1.15) + 16
    k0 = max(1, min(int(k0), total))
    while True:
        times = np.empty((k0 + 1, p), dtype=np.float64)
        times[0] = 0.0 if t0 is None else t0
        times[1:] = d
        np.cumsum(times, axis=0, out=times)
        flat = times[:k0].reshape(-1)
        order = np.argsort(flat, kind="stable")
        fixed = _fifo_fix(flat, order, total, p, rank0)
        if fixed is None:
            return _heap_schedule(d, total, t0, rank0)
        w_seq = fixed % p
        counts = np.bincount(w_seq, minlength=p)
        if int(counts.max(initial=0)) >= k0 and k0 < total:
            # A worker consumed every generated slot: later events of its
            # column may belong inside the cut.  Regrow and redo.
            k0 = min(total, k0 * 2)
            continue
        pop_times = flat[fixed]
        makespan = float(times[counts, np.arange(p)][counts > 0].max())
        return w_seq.astype(np.int64), pop_times, counts.astype(np.int64), makespan


def _replay_draws(
    universe: int, idx: np.ndarray, items: Optional[List[int]] = None
) -> np.ndarray:
    """Map pre-drawn swap-remove indices to drawn values.

    Replays :meth:`repro.taskpool.sample_set.SampleSet.draw`'s swap-remove
    on a full set of *universe* elements (or the explicit *items* list —
    phase 2's frozen remainder — which is consumed in place), with the
    per-draw uniform indices *idx* already consumed from the RNG in one
    batched call.
    """
    if items is None:
        items = list(range(universe))
    out = [0] * universe
    size = universe
    for t, pick in enumerate(idx.tolist()):
        v = items[pick]
        size -= 1
        items[pick] = items[size]
        out[t] = v
    return np.array(out, dtype=np.int64)


class _TaskByTaskKernel(VectorKernel):
    """Analytic kernel for the six one-task-per-request strategies.

    Under static speeds the schedule never depends on the task drawn
    (every assignment lasts ``1 / speed_w``), so pop order, task order
    and block accounting decouple: the pop schedule comes from
    :func:`_pop_schedule`, the task order from one batched RNG draw (or
    ``arange`` for the Sorted* variants), and per-worker distinct-block
    counts from boolean scatters over (worker, block) key spaces.  The
    MapReduce variants ship a constant *blocks_per_task* instead of
    consulting caches.  Replicates with a dynamic speed model take the
    lockstep single-task path (:meth:`_run_lockstep`) — the schedule is
    then genuinely history-dependent — with identical draws.
    """

    def __init__(
        self,
        kernel: str,
        random_order: bool,
        strategy_name: str,
        blocks_per_task: Optional[int] = None,
    ) -> None:
        self._kernel = kernel
        self._random = random_order
        self._replicated = blocks_per_task
        self.strategy_name = strategy_name

    def bytes_per_replicate(self, prototype: Strategy, p: int) -> int:
        n = prototype.n
        total = n * n if self._kernel == "outer" else n**3
        caches = 0
        if self._replicated is None:
            caches = 2 * p * n if self._kernel == "outer" else 3 * p * n * n
        return 8 * total + caches + 64 * p

    def run(self, prototype: Strategy, ctx: BatchContext) -> List[KernelRun]:
        n = prototype.n
        speeds = ctx.speeds
        p = int(speeds.shape[1])
        R = int(speeds.shape[0])
        total = n * n if self._kernel == "outer" else n**3
        replay = _replay_models(ctx.models)
        runs: List[Optional[KernelRun]] = [None] * R
        lockstep = (
            [] if replay is None else [r for r in range(R) if replay[r] is not None]
        )
        for r in range(R):
            if replay is not None and replay[r] is not None:
                continue
            d = 1.0 / speeds[r]
            w_seq, pop_times, counts, makespan = _pop_schedule(d, total)
            task_seq: Optional[np.ndarray] = None
            if self._random:
                # Bit-identical to `total` successive rng.integers(size)
                # calls with shrinking bounds (numpy's array-high path
                # consumes the stream exactly like the scalar path).
                idx = ctx.generators[r].integers(np.arange(total, 0, -1, dtype=np.int64))
                if self._replicated is None:
                    task_seq = _replay_draws(total, idx)
            elif self._replicated is None:
                task_seq = np.arange(total, dtype=np.int64)
            runs[r] = self._account(
                n, p, total, d, w_seq, pop_times, counts, makespan, task_seq, ctx.want_events
            )
        if lockstep:
            for r, kr in zip(lockstep, self._run_lockstep(n, p, total, lockstep, ctx, replay)):
                runs[r] = kr
        return [kr for kr in runs if kr is not None]

    def _run_lockstep(
        self,
        n: int,
        p: int,
        total: int,
        sub: List[int],
        ctx: BatchContext,
        replay: Optional[List[Optional[SpeedModel]]],
    ) -> List[KernelRun]:
        """Event-by-event lockstep for dynamic-speed replicates.

        Same draws, same block accounting; only the schedule is computed
        per event because durations depend on the evolving speeds.
        """
        assert replay is not None
        Rn = len(sub)
        speeds = ctx.speeds[np.asarray(sub, dtype=np.int64)]
        generators = [ctx.generators[r] for r in sub]
        models: List[Optional[SpeedModel]] = [replay[r] for r in sub]
        acc = _LockstepAccumulator(self.strategy_name, Rn, p, n, ctx.want_events)
        remaining = np.full(Rn, total, dtype=np.int64)
        items: List[Optional[List[int]]] = [
            list(range(total)) if self._random else None for _ in sub
        ]
        caches = _BlockCaches(self._kernel, Rn, p, n) if self._replicated is None else None
        act = np.arange(Rn, dtype=np.int64)
        while act.size:
            now, wsel = acc.pop(act)
            A = int(act.size)
            if self._random:
                vals = np.empty(A, dtype=np.int64)
                for g, r in enumerate(act.tolist()):
                    lst = items[r]
                    assert lst is not None
                    size = int(remaining[r])
                    # SampleSet.draw's swap-remove, replayed in place.
                    idx = int(generators[r].integers(size))
                    vals[g] = lst[idx]
                    lst[idx] = lst[size - 1]
            else:
                vals = total - remaining[act]
            if caches is not None:
                blocks = caches.ship(act, wsel, vals)
            else:
                assert self._replicated is not None
                blocks = np.full(A, self._replicated, dtype=np.int64)
            tasks = np.ones(A, dtype=np.int64)
            durations = _event_durations(speeds, models, act, wsel, tasks)
            acc.commit(act, wsel, now, durations, blocks, tasks)
            remaining[act] -= 1
            act = act[remaining[act] > 0]
        return acc.finish()

    def _operand_keys(
        self, n: int, w_seq: np.ndarray, task_seq: np.ndarray
    ) -> Tuple[np.ndarray, ...]:
        """(worker, block) keys per operand cache, in cache-add order."""
        if self._kernel == "outer":
            i, j = np.divmod(task_seq, n)
            base = w_seq * n
            return (base + i, base + j)
        ij, k = np.divmod(task_seq, n)
        i, j = np.divmod(ij, n)
        base = w_seq * (n * n)
        return (base + i * n + k, base + k * n + j, base + i * n + j)

    def _account(
        self,
        n: int,
        p: int,
        total: int,
        d: np.ndarray,
        w_seq: np.ndarray,
        pop_times: np.ndarray,
        counts: np.ndarray,
        makespan: float,
        task_seq: Optional[np.ndarray],
        want_events: bool,
    ) -> KernelRun:
        """Fold one replicate's schedule + task order into a KernelRun."""
        events: Optional[List[Event]] = None
        if self._replicated is not None:
            # Full replication: every task ships the same constant blocks.
            per_blocks = counts * self._replicated
            if want_events:
                durations = d[w_seq]
                events = list(
                    zip(
                        pop_times.tolist(),
                        w_seq.tolist(),
                        [self._replicated] * total,
                        [1] * total,
                        durations.tolist(),
                        [1] * total,
                    )
                )
            return KernelRun(per_blocks, counts, makespan, total, events)
        assert task_seq is not None
        block_space = n if self._kernel == "outer" else n * n
        keys = self._operand_keys(n, w_seq, task_seq)
        per_blocks = np.zeros(p, dtype=np.int64)
        for key in keys:
            seen = np.zeros(p * block_space, dtype=bool)
            seen[key] = True
            per_blocks += seen.reshape(p, block_space).sum(axis=1)
        if want_events:
            per_event = np.zeros(total, dtype=np.int64)
            for key in keys:
                first = np.zeros(total, dtype=bool)
                first[np.unique(key, return_index=True)[1]] = True
                per_event += first
            durations = d[w_seq]
            events = list(
                zip(
                    pop_times.tolist(),
                    w_seq.tolist(),
                    per_event.tolist(),
                    [1] * total,
                    durations.tolist(),
                    [1] * total,
                )
            )
        return KernelRun(per_blocks, counts, makespan, total, events)


# ---------------------------------------------------------------------------
# Lockstep kernels (Dynamic* strategies)
# ---------------------------------------------------------------------------

_SEQ_HUGE = np.iinfo(np.int64).max


def _select_workers(
    times: np.ndarray, seqs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-replicate heap pop: ``(now, worker)`` minimizing (time, seq)."""
    now = times.min(axis=1)
    masked = np.where(times == now[:, None], seqs, _SEQ_HUGE)
    return now, masked.argmin(axis=1)


def _batched_dim_draws(
    generators: Sequence[np.random.Generator],
    act: np.ndarray,
    need: np.ndarray,
    sizes: np.ndarray,
) -> np.ndarray:
    """Per-replicate uniform indices for this step's dimension draws.

    *need* is ``(dims, A)`` (which dimensions each active replicate grows)
    and *sizes* the matching unknown-set sizes.  Each draw is a plain
    scalar ``Generator.integers`` call in dimension order — the exact
    calls the scalar strategy makes, and several times cheaper than
    numpy's array-of-highs path at 1-3 elements.
    """
    dims = need.shape[0]
    need_rows = need.tolist()
    sizes_rows = sizes.tolist()
    out_rows = [[-1] * need.shape[1] for _ in range(dims)]
    act_l = act.tolist()
    # Dimension-major is safe: each generator only ever serves its own
    # replicate, so its stream still sees the draws in dimension order.
    for dim in range(dims):
        nr, sr, ol = need_rows[dim], sizes_rows[dim], out_rows[dim]
        for g, needed in enumerate(nr):
            if needed:
                ol[g] = int(generators[act_l[g]].integers(sr[g]))
    return np.array(out_rows, dtype=np.int64)


def _draw_values(
    items: np.ndarray,
    order: np.ndarray,
    cnt: np.ndarray,
    n: int,
    act: np.ndarray,
    wsel: np.ndarray,
    need: np.ndarray,
    draw_idx: np.ndarray,
) -> np.ndarray:
    """Swap-remove the drawn indices out of each unknown set, vectorized.

    Mirrors ``IndexKnowledge.draw_unknown``: the drawn value is recorded
    in insertion order (*order*) and the unknown buffer (*items*) closes
    the hole with its last live element.  Returns the ``(dims, A)`` drawn
    values (-1 where nothing was drawn).
    """
    dims = need.shape[0]
    vals = np.full(need.shape, -1, dtype=np.int64)
    for dim in range(dims):
        grp = np.flatnonzero(need[dim])
        if grp.size == 0:
            continue
        rg = act[grp]
        wg = wsel[grp]
        size = n - cnt[dim, rg, wg]
        ix = draw_idx[dim, grp]
        v = items[dim, rg, wg, ix]
        items[dim, rg, wg, ix] = items[dim, rg, wg, size - 1]
        vals[dim, grp] = v
        order[dim, rg, wg, cnt[dim, rg, wg]] = v
        cnt[dim, rg, wg] += 1
    return vals


class _BlockCaches:
    """(R, p, ·) boolean per-worker block caches for single-task draws.

    Backs both the random task-by-task strategies under dynamic speeds
    and phase 2 of the two-phase strategies: a worker's holdings are an
    arbitrary block subset, and ``ship`` counts (then records) the blocks
    a drawn task is missing — exactly ``BlockCache.add``'s semantics,
    batched across the step's active replicates.
    """

    def __init__(self, kind: str, R: int, p: int, n: int) -> None:
        self._outer = kind == "outer"
        self._n = n
        if self._outer:
            self.a = np.zeros((R, p, n), dtype=bool)
            self.b = np.zeros((R, p, n), dtype=bool)
            self.c: Optional[np.ndarray] = None
        else:
            self.a = np.zeros((R, p, n, n), dtype=bool)
            self.b = np.zeros((R, p, n, n), dtype=bool)
            self.c = np.zeros((R, p, n, n), dtype=bool)

    def ship(self, rg: np.ndarray, wg: np.ndarray, vals: np.ndarray) -> np.ndarray:
        """Newly shipped blocks per (replicate, worker, flat task) triple."""
        n = self._n
        if self._outer:
            i, j = np.divmod(vals, n)
            blocks = (~self.a[rg, wg, i]).astype(np.int64)
            blocks += ~self.b[rg, wg, j]
            self.a[rg, wg, i] = True
            self.b[rg, wg, j] = True
            return blocks
        assert self.c is not None
        ij, k = np.divmod(vals, n)
        i, j = np.divmod(ij, n)
        blocks = (~self.a[rg, wg, i, k]).astype(np.int64)
        blocks += ~self.b[rg, wg, k, j]
        blocks += ~self.c[rg, wg, i, j]
        self.a[rg, wg, i, k] = True
        self.b[rg, wg, k, j] = True
        self.c[rg, wg, i, j] = True
        return blocks


class _LockstepAccumulator:
    """Shared per-step bookkeeping of the lockstep kernels.

    Owns the event-queue mirror ((R, p) times + insertion sequences), the
    per-worker accumulators and the livelock guard, and finalizes the
    per-replicate :class:`KernelRun` list — everything that is identical
    between the outer, matrix and two-phase variants.
    """

    def __init__(self, strategy_name: str, R: int, p: int, n: int, want_events: bool) -> None:
        self.name = strategy_name
        self.times = np.zeros((R, p), dtype=np.float64)
        self.seqs = np.tile(np.arange(p, dtype=np.int64), (R, 1))
        self.next_seq = np.full(R, p, dtype=np.int64)
        self.blocks_acc = np.zeros((R, p), dtype=np.int64)
        self.tasks_acc = np.zeros((R, p), dtype=np.int64)
        self.makespan = np.zeros(R, dtype=np.float64)
        self.n_events = np.zeros(R, dtype=np.int64)
        self.streak = np.zeros(R, dtype=np.int64)
        self.budget = 4 * (3 * n + 2) * p + 1024
        self.events: Optional[List[List[Event]]] = (
            [[] for _ in range(R)] if want_events else None
        )

    def pop(self, act: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return _select_workers(self.times[act], self.seqs[act])

    def commit(
        self,
        act: np.ndarray,
        wsel: np.ndarray,
        now: np.ndarray,
        durations: np.ndarray,
        blocks: np.ndarray,
        tasks: np.ndarray,
        phases: Optional[np.ndarray] = None,
    ) -> None:
        """Account one popped event per active replicate, scalar-exactly."""
        finish = now + durations
        progressed = tasks > 0
        grew = act[progressed]
        self.makespan[grew] = np.maximum(self.makespan[grew], finish[progressed])
        self.streak[act] = np.where(progressed, 0, self.streak[act] + 1)
        if bool((self.streak[act] > self.budget).any()):
            worst = int(self.streak[act].max())
            raise LivelockError(
                f"{worst} consecutive zero-task assignments "
                f"(strategy={self.name}, remaining tasks unallocated)"
            )
        self.blocks_acc[act, wsel] += blocks
        self.tasks_acc[act, wsel] += tasks
        self.n_events[act] += 1
        self.times[act, wsel] = finish
        self.seqs[act, wsel] = self.next_seq[act]
        self.next_seq[act] += 1
        if self.events is not None:
            now_l = now.tolist()
            w_l = wsel.tolist()
            b_l = blocks.tolist()
            t_l = tasks.tolist()
            d_l = durations.tolist()
            ph_l = None if phases is None else phases.tolist()
            for g, r in enumerate(act.tolist()):
                self.events[r].append(
                    (now_l[g], w_l[g], b_l[g], t_l[g], d_l[g], 1 if ph_l is None else ph_l[g])
                )

    def finish(self) -> List[KernelRun]:
        runs: List[KernelRun] = []
        for r in range(self.times.shape[0]):
            runs.append(
                KernelRun(
                    self.blocks_acc[r].copy(),
                    self.tasks_acc[r].copy(),
                    float(self.makespan[r]),
                    int(self.n_events[r]),
                    None if self.events is None else self.events[r],
                )
            )
        return runs


class _OuterDynState:
    """Vectorized DynamicOuter phase-1 state: knowledge + processed bitmap.

    One :meth:`step` performs the scalar ``_dynamic_assign`` for a group
    of active replicates (two uniform dimension draws, cross marking over
    the previous index sets, complete-knowledge absorption) and keeps
    ``remaining`` in sync.  Shared by the DynamicOuter kernel and phase 1
    of DynamicOuter2Phases.
    """

    def __init__(self, R: int, p: int, n: int) -> None:
        self.n = n
        self.processed = np.zeros((R, n, n), dtype=bool)
        self.remaining = np.full(R, n * n, dtype=np.int64)
        # Two knowledge dimensions (rows of a, columns of b) per worker:
        # unknown-set buffers, insertion-order buffers and known counts.
        self.items = np.broadcast_to(np.arange(n, dtype=np.int64), (2, R, p, n)).copy()
        self.order = np.zeros((2, R, p, n), dtype=np.int64)
        self.cnt = np.zeros((2, R, p), dtype=np.int64)

    def step(
        self,
        generators: Sequence[np.random.Generator],
        act: np.ndarray,
        wsel: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = self.n
        A = int(act.size)
        prev = self.cnt[:, act, wsel]  # (2, A) counts before this step's draws
        complete = (prev[0] >= n) & (prev[1] >= n)
        tasks = np.zeros(A, dtype=np.int64)
        for g in np.flatnonzero(complete).tolist():
            r = int(act[g])
            tasks[g] = self.remaining[r]
            self.processed[r] = True
        need = np.empty((2, A), dtype=bool)
        need[0] = ~complete & (prev[0] < n)
        need[1] = ~complete & (prev[1] < n)
        sizes = n - prev
        draw_idx = _batched_dim_draws(generators, act, need, sizes)
        vals = _draw_values(self.items, self.order, self.cnt, n, act, wsel, need, draw_idx)
        iv, jv = vals[0], vals[1]
        # Cross marking, three disjoint pieces (center, row arm over the
        # previous columns, column arm over the previous rows).
        center = np.flatnonzero(need[0] & need[1])
        if center.size:
            rg = act[center]
            fresh = ~self.processed[rg, iv[center], jv[center]]
            self.processed[rg, iv[center], jv[center]] = True
            tasks[center] += fresh.astype(np.int64)
        tasks += _mark_arm(
            self.processed, self.order[1], act, wsel, need[0] & (prev[1] > 0), prev[1], iv, axis=0
        )
        tasks += _mark_arm(
            self.processed, self.order[0], act, wsel, need[1] & (prev[0] > 0), prev[0], jv, axis=1
        )
        blocks = need[0].astype(np.int64) + need[1].astype(np.int64)
        self.remaining[act] -= tasks
        return blocks, tasks


class _OuterDynamicKernel(VectorKernel):
    """Lockstep kernel for DynamicOuter (Algorithm 1), R replicates at once."""

    strategy_name = "DynamicOuter"

    def bytes_per_replicate(self, prototype: Strategy, p: int) -> int:
        n = prototype.n
        return n * n + 32 * p * n + 64 * p

    def run(self, prototype: Strategy, ctx: BatchContext) -> List[KernelRun]:
        n = prototype.n
        R, p = int(ctx.speeds.shape[0]), int(ctx.speeds.shape[1])
        replay = _replay_models(ctx.models)
        acc = _LockstepAccumulator(self.strategy_name, R, p, n, ctx.want_events)
        state = _OuterDynState(R, p, n)
        act = np.arange(R, dtype=np.int64)
        while act.size:
            now, wsel = acc.pop(act)
            blocks, tasks = state.step(ctx.generators, act, wsel)
            durations = _event_durations(ctx.speeds, replay, act, wsel, tasks)
            acc.commit(act, wsel, now, durations, blocks, tasks)
            act = act[state.remaining[act] > 0]
        return acc.finish()


def _mark_arm(
    processed: np.ndarray,
    arm_order: np.ndarray,
    act: np.ndarray,
    wsel: np.ndarray,
    grp_mask: np.ndarray,
    arm_counts: np.ndarray,
    fixed: np.ndarray,
    axis: int,
) -> np.ndarray:
    """Mark one arm of the DynamicOuter cross across replicates.

    For every replicate in *grp_mask*, marks the unprocessed tasks pairing
    the freshly drawn index *fixed* against the worker's previously-known
    indices of the other dimension (*arm_order* rows, *arm_counts* live
    prefix lengths).  Rows across replicates are padded to the longest
    prefix and masked.  Returns the newly-marked count per active slot.
    """
    out = np.zeros(act.size, dtype=np.int64)
    grp = np.flatnonzero(grp_mask)
    if grp.size == 0:
        return out
    rg = act[grp]
    wg = wsel[grp]
    width = int(arm_counts[grp].max())
    pad = arm_order[rg, wg, :width]
    valid = np.arange(width) < arm_counts[grp][:, None]
    rep = np.broadcast_to(rg[:, None], pad.shape)
    fix = np.broadcast_to(fixed[grp][:, None], pad.shape)
    if axis == 0:
        current = processed[rep, fix, pad]
    else:
        current = processed[rep, pad, fix]
    fresh = valid & ~current
    if axis == 0:
        processed[rep[fresh], fix[fresh], pad[fresh]] = True
    else:
        processed[rep[fresh], pad[fresh], fix[fresh]] = True
    out[grp] = fresh.sum(axis=1)
    return out


class _MatrixDynState:
    """Vectorized DynamicMatrix phase-1 state: I/J/K knowledge + cube bitmap.

    As :class:`_OuterDynState`, but with three dimensions, rectangle-growth
    block accounting and shell marking.  Shared by the DynamicMatrix kernel
    and phase 1 of DynamicMatrix2Phases.
    """

    def __init__(self, R: int, p: int, n: int) -> None:
        self.n = n
        self.processed = np.zeros((R, n, n, n), dtype=bool)
        self.remaining = np.full(R, n**3, dtype=np.int64)
        self.items = np.broadcast_to(np.arange(n, dtype=np.int64), (3, R, p, n)).copy()
        self.order = np.zeros((3, R, p, n), dtype=np.int64)
        self.cnt = np.zeros((3, R, p), dtype=np.int64)

    def step(
        self,
        generators: Sequence[np.random.Generator],
        act: np.ndarray,
        wsel: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = self.n
        A = int(act.size)
        prev = self.cnt[:, act, wsel]  # (3, A): |I|, |J|, |K| before the draws
        complete = (prev >= n).all(axis=0)
        tasks = np.zeros(A, dtype=np.int64)
        for g in np.flatnonzero(complete).tolist():
            r = int(act[g])
            tasks[g] = self.remaining[r]
            self.processed[r] = True
        need = ~complete & (prev < n)  # (3, A), draw order i, j, k
        sizes = n - prev
        draw_idx = _batched_dim_draws(generators, act, need, sizes)
        vals = _draw_values(self.items, self.order, self.cnt, n, act, wsel, need, draw_idx)
        grew = need.astype(np.int64)
        # Shipped blocks: growth of the A (I x K), B (K x J), C (I x J)
        # rectangles — the vectorized _grown_blocks arithmetic.
        blocks = (
            ((prev[0] + grew[0]) * (prev[2] + grew[2]) - prev[0] * prev[2])
            + ((prev[2] + grew[2]) * (prev[1] + grew[1]) - prev[2] * prev[1])
            + ((prev[0] + grew[0]) * (prev[1] + grew[1]) - prev[0] * prev[1])
        )
        # Shell marking: three disjoint slabs of the grown cube.
        grown_j = prev[1] + grew[1]
        grown_k = prev[2] + grew[2]
        tasks += _mark_slab(
            self.processed, act, need[0] & (grown_j > 0) & (grown_k > 0),
            _fixed_plane(vals[0], 0),
            (self.order[1], grown_j), (self.order[2], grown_k), wsel,
        )
        tasks += _mark_slab(
            self.processed, act, need[1] & (prev[0] > 0) & (grown_k > 0),
            _fixed_plane(vals[1], 1),
            (self.order[0], prev[0]), (self.order[2], grown_k), wsel,
        )
        tasks += _mark_slab(
            self.processed, act, need[2] & (prev[0] > 0) & (prev[1] > 0),
            _fixed_plane(vals[2], 2),
            (self.order[0], prev[0]), (self.order[1], prev[1]), wsel,
        )
        self.remaining[act] -= tasks
        return blocks, tasks


class _MatrixDynamicKernel(VectorKernel):
    """Lockstep kernel for DynamicMatrix (Algorithm 3), R replicates at once."""

    strategy_name = "DynamicMatrix"

    def bytes_per_replicate(self, prototype: Strategy, p: int) -> int:
        n = prototype.n
        return n**3 + 48 * p * n + 64 * p

    def run(self, prototype: Strategy, ctx: BatchContext) -> List[KernelRun]:
        n = prototype.n
        R, p = int(ctx.speeds.shape[0]), int(ctx.speeds.shape[1])
        replay = _replay_models(ctx.models)
        acc = _LockstepAccumulator(self.strategy_name, R, p, n, ctx.want_events)
        state = _MatrixDynState(R, p, n)
        act = np.arange(R, dtype=np.int64)
        while act.size:
            now, wsel = acc.pop(act)
            blocks, tasks = state.step(ctx.generators, act, wsel)
            durations = _event_durations(ctx.speeds, replay, act, wsel, tasks)
            acc.commit(act, wsel, now, durations, blocks, tasks)
            act = act[state.remaining[act] > 0]
        return acc.finish()


def _fixed_plane(vals: np.ndarray, dim: int) -> Tuple[np.ndarray, int]:
    """The (values, cube axis) of a slab's fixed index."""
    return vals, dim


def _mark_slab(
    processed: np.ndarray,
    act: np.ndarray,
    grp_mask: np.ndarray,
    fixed: Tuple[np.ndarray, int],
    span_a: Tuple[np.ndarray, np.ndarray],
    span_b: Tuple[np.ndarray, np.ndarray],
    wsel: np.ndarray,
) -> np.ndarray:
    """Mark one DynamicMatrix shell slab across replicates.

    The slab fixes one cube axis to a freshly drawn index and spans the
    other two axes with per-worker index prefixes (padded to the longest
    prefix across the group and masked).  The three slabs of a shell are
    disjoint by construction, so gathers never see a sibling's scatter.
    Returns the newly-marked count per active slot.
    """
    out = np.zeros(act.size, dtype=np.int64)
    grp = np.flatnonzero(grp_mask)
    if grp.size == 0:
        return out
    rg = act[grp]
    wg = wsel[grp]
    fixed_vals, fixed_axis = fixed
    order_a, len_a = span_a
    order_b, len_b = span_b
    wa = int(len_a[grp].max())
    wb = int(len_b[grp].max())
    pad_a = order_a[rg, wg, :wa]  # (G, wa)
    pad_b = order_b[rg, wg, :wb]  # (G, wb)
    valid = (np.arange(wa) < len_a[grp][:, None])[:, :, None] & (
        np.arange(wb) < len_b[grp][:, None]
    )[:, None, :]
    shape = (int(grp.size), wa, wb)
    rep = np.broadcast_to(rg[:, None, None], shape)
    fix = np.broadcast_to(fixed_vals[grp][:, None, None], shape)
    a_idx = np.broadcast_to(pad_a[:, :, None], shape)
    b_idx = np.broadcast_to(pad_b[:, None, :], shape)
    # Map (fixed, span_a, span_b) onto cube axes (i, j, k).
    if fixed_axis == 0:
        i_idx, j_idx, k_idx = fix, a_idx, b_idx
    elif fixed_axis == 1:
        i_idx, j_idx, k_idx = a_idx, fix, b_idx
    else:
        i_idx, j_idx, k_idx = a_idx, b_idx, fix
    current = processed[rep, i_idx, j_idx, k_idx]
    fresh = valid & ~current
    processed[rep[fresh], i_idx[fresh], j_idx[fresh], k_idx[fresh]] = True
    out[grp] = fresh.sum(axis=(1, 2))
    return out


# ---------------------------------------------------------------------------
# Two-phase kernels (DynamicOuter2Phases / DynamicMatrix2Phases)
# ---------------------------------------------------------------------------


class _TwoPhaseKernel(VectorKernel):
    """Lockstep kernel for the two-phase strategies (Algorithm 2 / §4.1).

    Phase 1 reuses the Dynamic* state machinery verbatim.  Each replicate
    crosses its own threshold (``resolve_threshold`` replayed against the
    replicate's platform, matching the scalar reset) the moment a request
    finds ``remaining <= threshold`` — the same pre-dispatch check
    ``assign`` performs — and freezes its knowledge into per-worker block
    caches plus a swap-remove sampler over the surviving task ids, in the
    pool's sorted id order.  From then on its events draw one uniformly
    random unprocessed task, ship the missing blocks, and report phase 2.

    Under static speeds a crossing replicate leaves the lockstep loop
    entirely: phase 2 assigns exactly one task per event at a constant
    ``1 / speed_w`` duration, so its whole remainder is closed-form — the
    pop schedule resumes the heap from the replicate's pending event
    times and FIFO ranks (:func:`_pop_schedule` with ``t0``/``rank0``),
    the sampler draws collapse into one batched ``Generator.integers``
    call, and block shipping is first-occurrence accounting against the
    frozen caches (:meth:`_phase2_analytic`).  Only replicates on a
    dynamic speed model stay in the event loop, their phases advancing
    side by side through the shared queue.
    """

    def __init__(self, kind: str, strategy_name: str) -> None:
        self._kind = kind
        self.strategy_name = strategy_name

    def bytes_per_replicate(self, prototype: Strategy, p: int) -> int:
        n = prototype.n
        if self._kind == "outer":
            # Phase-1 state + (R, p, n) caches + sampler replay ids.
            return 9 * n * n + 34 * p * n + 64 * p
        return 9 * n**3 + 3 * p * n * n + 48 * p * n + 64 * p

    def run(self, prototype: Strategy, ctx: BatchContext) -> List[KernelRun]:
        assert isinstance(prototype, (OuterTwoPhase, MatrixTwoPhase))
        n = prototype.n
        R, p = int(ctx.speeds.shape[0]), int(ctx.speeds.shape[1])
        outer = self._kind == "outer"
        replay = _replay_models(ctx.models)
        # The scalar strategy resolves its threshold at reset() from the
        # bound platform; replay that resolution per replicate.
        thresholds = np.array(
            [prototype.resolve_threshold(pl) for pl in ctx.platforms], dtype=np.int64
        )
        acc = _LockstepAccumulator(self.strategy_name, R, p, n, ctx.want_events)
        state = _OuterDynState(R, p, n) if outer else _MatrixDynState(R, p, n)
        phase2 = np.zeros(R, dtype=bool)
        p2_items: List[Optional[List[int]]] = [None] * R
        caches: Optional[_BlockCaches] = None
        act = np.arange(R, dtype=np.int64)
        while act.size:
            now, wsel = acc.pop(act)
            # Threshold check before dispatch, as assign() does.
            crossing = ~phase2[act] & (state.remaining[act] <= thresholds[act])
            if crossing.any():
                for r in act[crossing].tolist():
                    if replay is None or replay[r] is None:
                        # Static speeds: the remainder is closed-form.
                        self._phase2_analytic(int(r), state, acc, ctx)
                        continue
                    if caches is None:
                        caches = _BlockCaches(self._kind, R, p, n)
                    p2_items[int(r)] = self._freeze(state, caches, int(r), p)
                    phase2[r] = True
                keep = state.remaining[act] > 0
                if not keep.all():
                    act = act[keep]
                    now = now[keep]
                    wsel = wsel[keep]
                    if not act.size:
                        break
            in2 = phase2[act]
            A = int(act.size)
            blocks = np.zeros(A, dtype=np.int64)
            tasks = np.zeros(A, dtype=np.int64)
            phases: Optional[np.ndarray] = None
            g1 = np.flatnonzero(~in2)
            if g1.size:
                b1, t1 = state.step(ctx.generators, act[g1], wsel[g1])
                blocks[g1] = b1
                tasks[g1] = t1
            g2 = np.flatnonzero(in2)
            if g2.size:
                assert caches is not None
                phases = np.ones(A, dtype=np.int64)
                phases[g2] = 2
                rg = act[g2]
                vals = np.empty(int(g2.size), dtype=np.int64)
                for x, r in enumerate(rg.tolist()):
                    lst = p2_items[r]
                    assert lst is not None
                    # SampleSet.draw over the frozen remainder: the live
                    # size *is* the remaining count.
                    size = int(state.remaining[r])
                    idx = int(ctx.generators[r].integers(size))
                    vals[x] = lst[idx]
                    lst[idx] = lst[size - 1]
                blocks[g2] = caches.ship(rg, wsel[g2], vals)
                tasks[g2] = 1
                state.remaining[rg] -= 1
            durations = _event_durations(ctx.speeds, replay, act, wsel, tasks)
            acc.commit(act, wsel, now, durations, blocks, tasks, phases)
            act = act[state.remaining[act] > 0]
        return acc.finish()

    def _freeze(
        self,
        state: "_OuterDynState | _MatrixDynState",
        caches: _BlockCaches,
        r: int,
        p: int,
    ) -> List[int]:
        """Scalar ``_enter_phase2`` for replicate *r*.

        Returns the frozen sampler items (the pool's unprocessed ids in
        ascending order) and seeds the worker block caches from the
        phase-1 index sets — the index-set product for matmul, the plain
        index sets for the outer product.
        """
        order, cnt = state.order, state.cnt
        if self._kind == "outer":
            for w in range(p):
                caches.a[r, w, order[0, r, w, : int(cnt[0, r, w])]] = True
                caches.b[r, w, order[1, r, w, : int(cnt[1, r, w])]] = True
        else:
            assert caches.c is not None
            for w in range(p):
                rows = order[0, r, w, : int(cnt[0, r, w])]
                cols = order[1, r, w, : int(cnt[1, r, w])]
                deps = order[2, r, w, : int(cnt[2, r, w])]
                caches.a[r, w][np.ix_(rows, deps)] = True
                caches.b[r, w][np.ix_(deps, cols)] = True
                caches.c[r, w][np.ix_(rows, cols)] = True
        flat: List[int] = np.flatnonzero(~state.processed[r].reshape(-1)).tolist()
        return flat

    def _phase2_analytic(
        self,
        r: int,
        state: "_OuterDynState | _MatrixDynState",
        acc: _LockstepAccumulator,
        ctx: BatchContext,
    ) -> None:
        """Close out replicate *r*'s phase 2 in closed form (static speeds).

        Every phase-2 event assigns exactly one task for a constant
        ``1 / speed_w``, so from the crossing pop onward the schedule is
        the heap resumed at the replicate's pending event times (the
        crossing pop itself becomes the first phase-2 event), the sampler
        indices are one batched draw over deterministically shrinking
        bounds, and the shipped blocks are first occurrences of
        (worker, block) keys not already in the frozen phase-1 caches.
        The replicate's totals merge into the accumulator and it leaves
        the lockstep loop for good.
        """
        n = state.n
        p = int(acc.times.shape[1])
        m = int(state.remaining[r])
        d = 1.0 / ctx.speeds[r]
        rank0 = np.empty(p, dtype=np.int64)
        rank0[np.argsort(acc.seqs[r], kind="stable")] = np.arange(p, dtype=np.int64)
        w_seq, pop_times, counts, mk2 = _pop_schedule(
            d, m, t0=acc.times[r], rank0=rank0
        )
        idx = ctx.generators[r].integers(np.arange(m, 0, -1, dtype=np.int64))
        pool: List[int] = np.flatnonzero(~state.processed[r].reshape(-1)).tolist()
        task_seq = _replay_draws(m, idx, items=pool)
        order, cnt = state.order, state.cnt
        outer = self._kind == "outer"
        block_space = n if outer else n * n
        # Frozen per-worker caches (scalar _enter_phase2) as flat
        # (worker, block) masks, one per operand in cache-add order.
        dims = 2 if outer else 3
        seen = [np.zeros((p, block_space), dtype=bool) for _ in range(dims)]
        if outer:
            width = int(cnt[:, r].max())
            if width:
                valid_cols = np.arange(width)
                w_rows = np.broadcast_to(np.arange(p)[:, None], (p, width))
                for dim in range(2):
                    pad = order[dim, r, :, :width]
                    valid = valid_cols < cnt[dim, r][:, None]
                    seen[dim][w_rows[valid], pad[valid]] = True
        else:
            seen_a = seen[0].reshape(p, n, n)
            seen_b = seen[1].reshape(p, n, n)
            seen_c = seen[2].reshape(p, n, n)
            cnt_r = cnt[:, r].tolist()
            for w in range(p):
                rows = order[0, r, w, : cnt_r[0][w]][:, None]
                cols = order[1, r, w, : cnt_r[1][w]]
                deps = order[2, r, w, : cnt_r[2][w]]
                seen_a[w][rows, deps] = True
                seen_b[w][deps[:, None], cols] = True
                seen_c[w][rows, cols] = True
        if outer:
            i, j = np.divmod(task_seq, n)
            base = w_seq * n
            keys = (base + i, base + j)
        else:
            ij, k = np.divmod(task_seq, n)
            i, j = np.divmod(ij, n)
            base = w_seq * block_space
            keys = (base + i * n + k, base + k * n + j, base + i * n + j)
        per_blocks = np.zeros(p, dtype=np.int64)
        per_event = np.zeros(m, dtype=np.int64) if acc.events is not None else None
        is_first = np.empty(m, dtype=bool)
        for cache, key in zip(seen, keys):
            # First occurrence of each (worker, block) key not already in
            # the frozen cache ships exactly once (BlockCache.add).
            srt = np.argsort(key, kind="stable")
            ks = key[srt]
            is_first[0] = True
            np.not_equal(ks[1:], ks[:-1], out=is_first[1:])
            fresh = is_first & ~cache.reshape(-1)[ks]
            per_blocks += np.bincount(ks[fresh] // block_space, minlength=p)
            if per_event is not None:
                per_event[srt[fresh]] += 1
        acc.blocks_acc[r] += per_blocks
        acc.tasks_acc[r] += counts
        acc.n_events[r] += m
        if mk2 > acc.makespan[r]:
            acc.makespan[r] = mk2
        if acc.events is not None:
            assert per_event is not None
            acc.events[r].extend(
                zip(
                    pop_times.tolist(),
                    w_seq.tolist(),
                    per_event.tolist(),
                    [1] * m,
                    d[w_seq].tolist(),
                    [2] * m,
                )
            )
        state.remaining[r] = 0


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Exact-type kernel registry.  Keyed by ``type(strategy)`` — never
#: ``isinstance`` — so strategy subclasses (which may change semantics)
#: safely fall back to per-replicate scalar simulation.
_KERNELS: Dict[Type[Strategy], VectorKernel] = {
    OuterRandom: _TaskByTaskKernel("outer", True, "RandomOuter"),
    OuterSorted: _TaskByTaskKernel("outer", False, "SortedOuter"),
    MatrixRandom: _TaskByTaskKernel("matrix", True, "RandomMatrix"),
    MatrixSorted: _TaskByTaskKernel("matrix", False, "SortedMatrix"),
    OuterMapReduce: _TaskByTaskKernel("outer", True, "MapReduceOuter", blocks_per_task=2),
    MatrixMapReduce: _TaskByTaskKernel("matrix", True, "MapReduceMatrix", blocks_per_task=3),
    OuterDynamic: _OuterDynamicKernel(),
    MatrixDynamic: _MatrixDynamicKernel(),
    OuterTwoPhase: _TwoPhaseKernel("outer", "DynamicOuter2Phases"),
    MatrixTwoPhase: _TwoPhaseKernel("matrix", "DynamicMatrix2Phases"),
}


def kernel_for(strategy: "Strategy | Type[Strategy]") -> Optional[VectorKernel]:
    """The vector kernel covering *strategy*'s exact type, or ``None``."""
    cls = strategy if isinstance(strategy, type) else type(strategy)
    return _KERNELS.get(cls)
