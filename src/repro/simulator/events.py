"""Deterministic event queue for the demand-driven simulation loop.

Events are ``(time, worker)`` pairs meaning "worker becomes idle at *time*
and requests new work".  A monotonically increasing sequence number breaks
timestamp ties, making the pop order fully deterministic (FIFO among equal
times) — essential for reproducible simulations and for the zero-duration
assignments that the Dynamic* strategies can produce near the end of a run.
"""

from __future__ import annotations

import heapq
import math

from repro.utils.validation import check_nonnegative_int
from typing import List, Tuple

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of ``(time, seq, worker)`` with deterministic tie-breaking."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, worker: int) -> None:
        """Schedule *worker* to request work at *time*.

        This is the validating public entry point: worker ids and timestamps
        are checked on every call.  The simulation loop validates its worker
        ids once up front and then re-queues through
        :meth:`push_unchecked`, which skips the per-event checks — at ~10^6
        events per run the ``math.isfinite`` + integer check pair is
        measurable.
        """
        if not math.isfinite(time) or time < 0:
            raise ValueError(f"event time must be finite and >= 0, got {time}")
        check_nonnegative_int("worker id", worker)
        heapq.heappush(self._heap, (time, self._seq, worker))
        self._seq += 1

    def push_unchecked(self, time: float, worker: int) -> None:
        """Hot-path push: *time* and *worker* must already be validated.

        Public fast lane for event loops that validate their inputs once up
        front (the simulation engines re-queue the same worker ids ~10^6
        times per run).  Ordering and tie-breaking are identical to
        :meth:`push`; only the per-call finiteness/integer checks are
        skipped, so callers must guarantee ``time`` is finite and >= 0 and
        ``worker`` is a non-negative int.  When in doubt, use :meth:`push`.
        """
        heapq.heappush(self._heap, (time, self._seq, worker))
        self._seq += 1

    def pop(self) -> Tuple[float, int]:
        """Pop the earliest event; returns ``(time, worker)``."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        time, _seq, worker = heapq.heappop(self._heap)
        return time, worker

    def peek_time(self) -> float:
        """Timestamp of the next event without popping it."""
        if not self._heap:
            raise IndexError("peek on an empty EventQueue")
        return self._heap[0][0]
