"""Event-driven master–worker simulator.

This is the paper's "ad-hoc event based simulation tool, where processors
request new tasks as soon as they are available, and tasks are allocated
based on the given runtime dynamic strategy" (Section 3.4), rebuilt as a
documented library:

* :class:`~repro.simulator.events.EventQueue` — a deterministic min-heap of
  worker-ready events (FIFO among equal timestamps);
* :func:`~repro.simulator.engine.simulate` — the demand-driven loop: pop the
  next ready worker, ask the strategy for an assignment, account the shipped
  blocks, advance the worker by the assignment's duration;
* :class:`~repro.simulator.results.SimulationResult` — total/per-worker
  communication, task counts, makespan, and the optional event trace.

Communication is counted in *blocks shipped* and never consumes time: the
paper assumes communication is fully overlapped with computation (blocks are
uploaded slightly in advance), so only the volume matters.
"""

from repro.simulator.batch import has_vector_kernel, simulate_batch
from repro.simulator.engine import LivelockError, simulate
from repro.simulator.events import EventQueue
from repro.simulator.gantt import ascii_gantt, utilization, worker_intervals
from repro.simulator.results import FaultStats, SimulationResult
from repro.simulator.serialize import (
    load_result,
    result_from_json,
    result_to_json,
    save_result,
)
from repro.simulator.trace import AssignmentRecord, FaultRecord, Trace

__all__ = [
    "simulate",
    "simulate_batch",
    "has_vector_kernel",
    "LivelockError",
    "EventQueue",
    "SimulationResult",
    "FaultStats",
    "Trace",
    "AssignmentRecord",
    "FaultRecord",
    "ascii_gantt",
    "utilization",
    "worker_intervals",
    "result_to_json",
    "result_from_json",
    "save_result",
    "load_result",
]
