"""Optional per-assignment trace of a simulation run.

When enabled, :func:`repro.simulator.simulate` records one
:class:`AssignmentRecord` per master/worker interaction.  The trace is what
the execution-replay engine (:mod:`repro.execution`) consumes to re-run a
schedule on real NumPy blocks, and what tests use to verify fine-grained
invariants (e.g. monotone per-worker timestamps, exactly-once processing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

__all__ = ["AssignmentRecord", "FaultRecord", "FAULT_KINDS", "Trace"]

#: Recognized fault-event kinds, in the order the engine can emit them.
FAULT_KINDS = ("crash", "restart", "loss", "timeout", "replicate")


@dataclass(frozen=True)
class AssignmentRecord:
    """One answer of the master to one worker request.

    Attributes
    ----------
    time:
        Simulation time of the request.
    worker:
        Requesting worker id.
    blocks:
        Number of data blocks shipped with this assignment.
    tasks:
        Number of block tasks allocated.
    duration:
        Compute time of the assignment on this worker.
    phase:
        Strategy phase that produced the assignment (1 or 2; plain
        strategies always report 1).
    task_ids:
        Flat ids of the allocated tasks, present only when the strategy's
        pool was created with ``collect_ids=True``.
    """

    time: float
    worker: int
    blocks: int
    tasks: int
    duration: float
    phase: int = 1
    task_ids: Optional[np.ndarray] = None


@dataclass(frozen=True)
class FaultRecord:
    """One fault or recovery event of a fault-aware run.

    Attributes
    ----------
    time:
        Simulation time at which the event fired.
    kind:
        One of ``"crash"``, ``"restart"``, ``"loss"``, ``"timeout"``,
        ``"replicate"``.
    worker:
        The worker the event concerns.
    tasks:
        Task count affected (in-flight tasks released, or duplicated).
    blocks:
        Block count affected (wasted with a lost assignment, or shipped for
        a replicated tail task).
    """

    time: float
    kind: str
    worker: int
    tasks: int = 0
    blocks: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")


@dataclass
class Trace:
    """Chronological list of assignment records of one run.

    Fault-aware runs additionally append one :class:`FaultRecord` per
    crash/restart/loss/timeout/replication event to :attr:`faults`;
    fault-free runs leave the list empty.
    """

    records: List[AssignmentRecord] = field(default_factory=list)
    faults: List[FaultRecord] = field(default_factory=list)

    def append(self, record: AssignmentRecord) -> None:
        self.records.append(record)

    def append_fault(self, record: FaultRecord) -> None:
        self.faults.append(record)

    def faults_of_kind(self, kind: str) -> List[FaultRecord]:
        """All fault events of one kind, in chronological order."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {kind!r}")
        return [r for r in self.faults if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[AssignmentRecord]:
        return iter(self.records)

    def for_worker(self, worker: int) -> List[AssignmentRecord]:
        """All records of one worker, in chronological order."""
        return [r for r in self.records if r.worker == worker]

    def total_blocks(self) -> int:
        return sum(r.blocks for r in self.records)

    def total_tasks(self) -> int:
        return sum(r.tasks for r in self.records)

    def phase_blocks(self, phase: int) -> int:
        """Blocks shipped by assignments of the given phase."""
        return sum(r.blocks for r in self.records if r.phase == phase)

    def phase_tasks(self, phase: int) -> int:
        """Tasks allocated by assignments of the given phase."""
        return sum(r.tasks for r in self.records if r.phase == phase)

    def all_task_ids(self) -> np.ndarray:
        """Concatenate task ids across records (requires ``collect_ids``)."""
        chunks = [r.task_ids for r in self.records if r.task_ids is not None and r.task_ids.size]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)
