"""The demand-driven simulation loop.

The engine realizes the paper's execution model:

* every worker requests work the instant it becomes idle (time 0 at start);
* the master answers immediately with an :class:`~repro.core.strategies.base.Assignment`;
* communication is fully overlapped, so shipping blocks costs volume but no
  time; an assignment of ``m`` tasks occupies the worker for
  ``m / speed`` time units (or the dynamic-speed equivalent);
* the run ends when the strategy has allocated every task.

Zero-task assignments (the master ships blocks whose whole cross is already
processed) legitimately occur near the end of a Dynamic* run; they re-enter
the queue at the same timestamp.  Termination is still guaranteed because
each such assignment strictly grows the worker's knowledge, and a worker
with complete knowledge absorbs the whole remainder — but a defensive
livelock guard turns any strategy bug into a loud :class:`LivelockError`
instead of a hang.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.strategies.base import Strategy
from repro.obs.sink import MetricsSink
from repro.platform.platform import Platform
from repro.platform.speeds import SpeedModel, StaticSpeedModel
from repro.simulator.events import EventQueue
from repro.simulator.results import SimulationResult
from repro.simulator.trace import AssignmentRecord, Trace
from repro.utils.rng import SeedLike, as_generator

__all__ = ["simulate", "LivelockError"]


class LivelockError(RuntimeError):
    """Raised when the run exceeds the zero-progress assignment budget."""


def _zero_budget(strategy: Strategy, platform: Platform) -> int:
    # A worker can receive at most ~3n index blocks before its knowledge is
    # complete, so across p workers the number of zero-task assignments is
    # bounded by O(n * p); anything far beyond that is a strategy bug.
    return 4 * (3 * strategy.n + 2) * platform.p + 1024


def simulate(
    strategy: Strategy,
    platform: Platform,
    *,
    rng: SeedLike = None,
    speed_model: Optional[SpeedModel] = None,
    collect_trace: bool = False,
    sink: Optional[MetricsSink] = None,
) -> SimulationResult:
    """Run *strategy* on *platform* and return the communication accounting.

    Parameters
    ----------
    strategy:
        Any :class:`~repro.core.strategies.base.Strategy`; it is reset at
        the start of the run, so the same instance can be reused.
    platform:
        The heterogeneous platform (worker speeds).
    rng:
        Seed or generator driving every random choice of the run (strategy
        draws and dynamic-speed perturbations share this stream).
    speed_model:
        Defaults to :class:`~repro.platform.speeds.StaticSpeedModel`.
    collect_trace:
        Record one :class:`~repro.simulator.trace.AssignmentRecord` per
        interaction (needed for execution replay and fine-grained tests).
    sink:
        Optional :class:`~repro.obs.sink.MetricsSink` receiving run/
        assignment events.  ``None`` (the default) keeps the hot loop
        free of instrumentation.

    Returns
    -------
    SimulationResult
        Totals, per-worker breakdowns, makespan and the optional trace.
    """
    generator = as_generator(rng)
    model = speed_model if speed_model is not None else StaticSpeedModel()
    model.reset(platform, generator)
    strategy.reset(platform, generator)

    p = platform.p
    if sink is not None:
        sink.on_run_start(
            strategy.name,
            strategy.kernel,
            strategy.n,
            p,
            [float(s) for s in platform.relative_speeds],
        )
    queue = EventQueue()
    # Worker ids are validated here, once; the loop below re-queues the same
    # ids through the unchecked fast path.
    for w in range(p):
        queue.push(0.0, w)

    # Per-worker accumulation in plain Python ints: ~10^6 numpy-scalar
    # indexed updates per run cost more than the whole heap traffic.
    blocks = [0] * p
    tasks = [0] * p
    makespan = 0.0
    n_assignments = 0
    trace = Trace() if collect_trace else None

    zero_streak = 0
    zero_budget = _zero_budget(strategy, platform)

    # Hoisted method lookups for the event loop.
    queue_pop = queue.pop
    queue_push = queue.push_unchecked
    assign = strategy.assign

    # StaticSpeedModel (every figure except 8) reduces to one float division
    # per event; inlining it avoids a method call plus numpy scalar indexing
    # while producing bit-identical durations (same ``n_tasks / speed``
    # operands as StaticSpeedModel.duration).
    static_speeds: Optional[List[float]] = None
    if type(model) is StaticSpeedModel:
        static_speeds = [float(s) for s in platform.speeds]
    model_duration = model.duration

    while not strategy.done:
        if not queue:  # pragma: no cover - defensive; workers always requeue
            raise LivelockError("event queue drained before all tasks were allocated")
        now, worker = queue_pop()
        assignment = assign(worker, now)
        n_assignments += 1

        a_tasks = assignment.tasks
        blocks[worker] += assignment.blocks
        tasks[worker] += a_tasks
        if static_speeds is not None:
            duration = a_tasks / static_speeds[worker]
        else:
            duration = model_duration(worker, a_tasks)
        finish = now + duration
        if a_tasks > 0:
            if finish > makespan:
                makespan = finish
            zero_streak = 0
        else:
            zero_streak += 1
            if zero_streak > zero_budget:
                raise LivelockError(
                    f"{zero_streak} consecutive zero-task assignments "
                    f"(strategy={strategy.name}, remaining tasks unallocated)"
                )
        if trace is not None:
            trace.append(
                AssignmentRecord(
                    time=now,
                    worker=worker,
                    blocks=assignment.blocks,
                    tasks=a_tasks,
                    duration=duration,
                    phase=assignment.phase,
                    task_ids=assignment.task_ids,
                )
            )
        if sink is not None:
            sink.on_assignment(
                now, worker, assignment.blocks, a_tasks, duration, assignment.phase
            )
        queue_push(finish, worker)

    if sink is not None:
        sink.on_run_end(makespan, sum(blocks), sum(tasks), n_assignments)
    return SimulationResult(
        total_blocks=sum(blocks),
        per_worker_blocks=np.asarray(blocks, dtype=np.int64),
        per_worker_tasks=np.asarray(tasks, dtype=np.int64),
        makespan=makespan,
        n_assignments=n_assignments,
        strategy_name=strategy.name,
        trace=trace,
    )
