"""Worker-occupancy analysis and ASCII Gantt rendering of traces.

Turns a traced :class:`~repro.simulator.results.SimulationResult` into

* per-worker busy intervals (:func:`worker_intervals`),
* per-worker utilization over the makespan (:func:`utilization`),
* a terminal Gantt chart (:func:`ascii_gantt`) where each worker row shows
  computing time as ``#`` (phase 1) / ``=`` (phase 2) and idling as
  spaces — the quickest way to *see* demand-driven load balancing and the
  two-phase switch.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.simulator.results import SimulationResult

__all__ = ["Interval", "worker_intervals", "utilization", "ascii_gantt"]

Interval = Tuple[float, float, int]  # (start, end, phase)


def _require_trace(result: SimulationResult) -> None:
    if result.trace is None:
        raise ValueError("result has no trace; simulate with collect_trace=True")


def worker_intervals(result: SimulationResult) -> Dict[int, List[Interval]]:
    """Busy intervals per worker: ``(start, end, phase)`` per assignment.

    Zero-duration assignments (pure data shipments) are skipped.
    """
    _require_trace(result)
    out: Dict[int, List[Interval]] = {}
    for rec in result.trace:
        if rec.duration <= 0:
            continue
        out.setdefault(rec.worker, []).append((rec.time, rec.time + rec.duration, rec.phase))
    return out


def utilization(result: SimulationResult) -> np.ndarray:
    """Fraction of the makespan each worker spends computing."""
    _require_trace(result)
    p = result.per_worker_blocks.size
    busy = np.zeros(p)
    for rec in result.trace:
        busy[rec.worker] += rec.duration
    if result.makespan <= 0:
        return np.zeros(p)
    return busy / result.makespan


def ascii_gantt(result: SimulationResult, *, width: int = 72) -> str:
    """Render the trace as a terminal Gantt chart.

    Each worker gets one row of *width* character cells spanning the
    makespan; a cell is ``#`` when mostly phase-1 compute, ``=`` for
    phase-2, and space when idle.
    """
    _require_trace(result)
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    span = result.makespan or 1.0
    p = result.per_worker_blocks.size
    # Accumulate per-cell busy time, per phase.
    busy = np.zeros((p, width, 2))
    for rec in result.trace:
        if rec.duration <= 0:
            continue
        lo = rec.time / span * width
        hi = (rec.time + rec.duration) / span * width
        first, last = int(lo), min(int(np.ceil(hi)), width)
        for cell in range(first, last):
            overlap = min(hi, cell + 1) - max(lo, cell)
            if overlap > 0:
                busy[rec.worker, cell, rec.phase - 1] += overlap

    util = utilization(result)
    lines = [f"Gantt ({result.strategy_name}, makespan {result.makespan:.4g})"]
    for w in range(p):
        cells = []
        for c in range(width):
            p1, p2 = busy[w, c]
            total = p1 + p2
            if total < 0.5:
                cells.append(" ")
            elif p2 > p1:
                cells.append("=")
            else:
                cells.append("#")
        lines.append(f"P{w:<3d}|{''.join(cells)}| {100 * util[w]:5.1f}%")
    lines.append(f"    0{' ' * (width - 8)}{span:.4g}")
    return "\n".join(lines)
