"""Append-only checksummed request journal: sweep state that survives SIGKILL.

The store's cache entries say *what* has been computed; the journal says
*what was asked for and how far it got*.  Every record is one JSON line in
``<root>/journal/1``::

    {"cell": "<fp>", "format": "repro.store.journal/1", "job": "<id>|null",
     "owner": "<owner>|null", "state": "accepted", "sha256": "<checksum>"}

``sha256`` is the digest of the record's canonical JSON *without* the
checksum field, so every line is independently verifiable.  States follow
one cell's lifecycle::

    accepted   the cell was admitted into a named job (sweep)
    claimed    an owner won the cell's claim file
    computed   the engine finished the cell
    flushed    the result is visible in the store

Appends are whole lines written under the store's
:class:`~repro.store.lock.FileLock` with the file opened in append mode, so
concurrent writers (lane workers, external sweep workers) never interleave
partial records.  Nothing is ever rewritten in place — a SIGKILL at any
point leaves at worst one torn final line, which :meth:`Journal.replay`
detects by checksum and skips, mirroring the cache's corrupt-entry
counters: corruption is counted and quarantined, never a crash.
:meth:`Journal.repair` moves undecodable lines into
``<root>/journal/quarantine`` so the main segment converges back to
all-valid records.

:meth:`Journal.job_status` is the recovery read path: a *job* (sweep) is
defined by its ``accepted`` records, a cell's progress is the furthest
state any record (from any process) reached, and store presence counts as
finished — which is exactly what a restarted ``repro-serve`` needs to
answer "was my sweep finished?" from disk alone.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.sink import MetricsSink
from repro.store.cache import ResultStore
from repro.store.fingerprint import canonical_json, sha256_text

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_STATES",
    "Journal",
    "JournalRecord",
    "JournalReplay",
]

#: Format tag inside every journal record; unknown tags read as corrupt.
JOURNAL_FORMAT = "repro.store.journal/1"

#: Cell lifecycle states, in progress order.
JOURNAL_STATES = ("accepted", "claimed", "computed", "flushed")

_STATE_RANK = {state: rank for rank, state in enumerate(JOURNAL_STATES)}


@dataclass(frozen=True)
class JournalRecord:
    """One validated journal line."""

    cell: str
    state: str
    job: Optional[str] = None
    owner: Optional[str] = None


@dataclass(frozen=True)
class JournalReplay:
    """Everything one :meth:`Journal.replay` pass recovered."""

    #: Valid records, in append order.
    records: "tuple[JournalRecord, ...]"
    #: Lines that failed decoding or checksum verification.
    corrupt: int


class Journal:
    """The append-only journal attached to one store directory.

    A *sink* receives ``on_store_event("journal", "journal_append")`` per
    appended record and ``("journal", "journal_corrupt")`` per quarantined
    line, landing journal traffic in the same metrics pipeline as cache
    hits and claims.
    """

    def __init__(self, store: ResultStore, *, sink: Optional[MetricsSink] = None) -> None:
        self._store = store
        self._sink = sink
        directory = os.path.join(store.root, "journal")
        os.makedirs(directory, exist_ok=True)
        #: The active journal segment (segment numbering leaves room for
        #: future rotation; everything today lives in segment ``1``).
        self.path = os.path.join(directory, "1")
        #: Where :meth:`repair` moves undecodable lines.
        self.quarantine_path = os.path.join(directory, "quarantine")

    # -- writing --------------------------------------------------------------

    @staticmethod
    def _format_record(
        state: str, cell: str, job: Optional[str], owner: Optional[str]
    ) -> str:
        record: Dict[str, Any] = {
            "format": JOURNAL_FORMAT,
            "cell": str(cell),
            "state": state,
            "job": None if job is None else str(job),
            "owner": None if owner is None else str(owner),
        }
        record["sha256"] = sha256_text(canonical_json(record))
        return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"

    def append(
        self, state: str, cell: str, *, job: Optional[str] = None, owner: Optional[str] = None
    ) -> None:
        """Append one record (see :meth:`append_many`)."""
        self.append_many(state, [cell], job=job, owner=owner)

    def append_many(
        self,
        state: str,
        cells: Iterable[str],
        *,
        job: Optional[str] = None,
        owner: Optional[str] = None,
    ) -> int:
        """Append one *state* record per cell under a single lock hold.

        Returns the number of records written.  Whole lines only: a reader
        can never observe half of one process's record interleaved with
        another's.
        """
        if state not in _STATE_RANK:
            raise ValueError(
                f"state must be one of {JOURNAL_STATES}, got {state!r}"
            )
        lines = [self._format_record(state, cell, job, owner) for cell in cells]
        if not lines:
            return 0
        data = "".join(lines)
        with self._store.lock():
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(data)
        if self._sink is not None:
            for _ in lines:
                self._sink.on_store_event("journal", "journal_append")
        return len(lines)

    # -- reading --------------------------------------------------------------

    @staticmethod
    def _parse_line(line: str) -> Optional[JournalRecord]:
        try:
            raw = json.loads(line)
        except ValueError:
            return None
        if not isinstance(raw, dict) or raw.get("format") != JOURNAL_FORMAT:
            return None
        digest = raw.pop("sha256", None)
        if not isinstance(digest, str):
            return None
        try:
            expected = sha256_text(canonical_json(raw))
        except TypeError:
            return None
        if digest != expected:
            return None
        cell, state = raw.get("cell"), raw.get("state")
        job, owner = raw.get("job"), raw.get("owner")
        if not isinstance(cell, str) or state not in _STATE_RANK:
            return None
        if not (job is None or isinstance(job, str)):
            return None
        if not (owner is None or isinstance(owner, str)):
            return None
        return JournalRecord(cell=cell, state=str(state), job=job, owner=owner)

    def _read_lines(self) -> List[str]:
        try:
            with open(self.path, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError:
            return []
        return [line for line in text.split("\n") if line]

    def replay(self) -> JournalReplay:
        """Read every record, skipping (and counting) corrupt lines.

        Lock-free like every store read: appends are whole lines, so the
        worst a concurrent writer can cause is a torn *final* line, which
        fails its checksum here and completes by the next replay.
        """
        records: List[JournalRecord] = []
        corrupt = 0
        for line in self._read_lines():
            record = self._parse_line(line)
            if record is None:
                corrupt += 1
            else:
                records.append(record)
        return JournalReplay(records=tuple(records), corrupt=corrupt)

    def repair(self) -> int:
        """Move corrupt lines into the quarantine file; returns how many.

        Runs under the store lock so no append can land between reading
        and atomically rewriting the cleaned segment.
        """
        with self._store.lock():
            lines = self._read_lines()
            good: List[str] = []
            bad: List[str] = []
            for line in lines:
                (good if self._parse_line(line) is not None else bad).append(line)
            if not bad:
                return 0
            with open(self.quarantine_path, "a", encoding="utf-8") as fh:
                for line in bad:
                    fh.write(line + "\n")
            directory = os.path.dirname(self.path)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    for line in good:
                        fh.write(line + "\n")
                os.replace(tmp, self.path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        if self._sink is not None:
            for _ in bad:
                self._sink.on_store_event("journal", "journal_corrupt")
        return len(bad)

    # -- job status -----------------------------------------------------------

    def jobs(self) -> List[str]:
        """Every job id with at least one ``accepted`` record, sorted."""
        replayed = self.replay()
        return sorted(
            {r.job for r in replayed.records if r.state == "accepted" and r.job is not None}
        )

    def job_cells(self, job: str) -> Dict[str, str]:
        """Per-cell furthest state for *job*; empty when the job is unknown.

        Membership comes from the job's ``accepted`` records; progress
        records (``claimed``/``computed``/``flushed``) advance a member
        cell regardless of which process — or which job id — wrote them,
        because cell computation is shared across jobs by design.
        """
        return self._job_cells(self.replay(), job)

    @staticmethod
    def _job_cells(replayed: JournalReplay, job: str) -> Dict[str, str]:
        members: Dict[str, str] = {}
        for record in replayed.records:
            if record.state == "accepted" and record.job == str(job):
                members.setdefault(record.cell, "accepted")
        if not members:
            return {}
        for record in replayed.records:
            current = members.get(record.cell)
            if current is not None and _STATE_RANK[record.state] > _STATE_RANK[current]:
                members[record.cell] = record.state
        return members

    def job_status(
        self, job: str, *, store: Optional[ResultStore] = None
    ) -> Optional[Dict[str, Any]]:
        """JSON-ready recovery status for *job*, or ``None`` if unknown.

        A cell counts as finished when its journal state reached
        ``flushed`` *or* the result is present in *store* — the journal
        may miss the final record if the writer died between ``put`` and
        append, but the store entry is the ground truth.
        """
        replayed = self.replay()
        cells = self._job_cells(replayed, job)
        if not cells:
            return None
        finished = sorted(
            fp
            for fp, state in cells.items()
            if state == "flushed" or (store is not None and store.has_fingerprint(fp))
        )
        pending = sorted(set(cells) - set(finished))
        return {
            "job": str(job),
            "cells": dict(sorted(cells.items())),
            "finished": finished,
            "pending": pending,
            "done": not pending,
            "corrupt_records": replayed.corrupt,
        }
