"""``python -m repro.store`` — alias for the ``repro-store`` CLI."""

import sys

from repro.store.cli import main

if __name__ == "__main__":  # pragma: no cover - thin alias
    sys.exit(main())
