"""The on-disk content-addressed object store.

Entries live under ``<root>/objects/<fp[:2]>/<fp>.json`` where ``fp`` is the
sha256 fingerprint of the entry's cache key (see
:mod:`repro.store.fingerprint`).  Each file is a self-describing envelope::

    {
      "format": "repro.store/1",
      "kind": "replicate-cell",        # what the payload is
      "fingerprint": "<sha256 of key>",
      "key": {...},                    # the full canonical key, for audit
      "payload": {...},                # the cached value
      "payload_sha256": "<sha256 of canonical payload JSON>"
    }

Robustness follows the :mod:`repro.faults` mindset — a cache must *never*
turn a recoverable problem into a crash:

* writes are atomic (temp file + ``os.replace``) and serialized through a
  :class:`~repro.store.lock.FileLock`, so readers never observe partial
  files even with ``workers=`` processes sharing one store;
* reads treat any anomaly (unparsable JSON, wrong format tag, fingerprint
  or payload checksum mismatch) as a *miss*: the corrupt file is counted,
  unlinked best-effort, and the caller recomputes;
* one store instance may be shared by threads (the ``repro-serve``
  executor lanes do): every operation additionally holds an in-process
  ``threading.RLock``, because the file lock serializes *processes* while
  the instance's counters and sink forwarding need protection *within*
  one process.  Lock order is always mutex → file lock.

Hit/miss/put/corrupt counts are kept per store instance
(:class:`StoreCounts`) and, when a :class:`~repro.obs.sink.MetricsSink` is
attached, forwarded through its ``on_store_event`` hook so ``repro-report``
can show cache hit rates.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.obs.sink import MetricsSink
from repro.store.fingerprint import canonical_json, fingerprint, sha256_text
from repro.store.lock import FileLock

__all__ = ["ResultStore", "StoreCounts", "StoreEntry", "STORE_FORMAT"]

#: Format tag written into every envelope; unknown tags read as corrupt.
STORE_FORMAT = "repro.store/1"


@dataclass
class StoreCounts:
    """Running totals of one store instance's traffic."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0

    def hit_rate(self) -> Optional[float]:
        """Hits over lookups, or ``None`` before the first lookup."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return None
        return self.hits / lookups


@dataclass(frozen=True)
class StoreEntry:
    """One on-disk cache entry's bookkeeping view (for ``ls``/``gc``)."""

    fingerprint: str
    path: str
    size: int
    mtime: float
    kind: str = field(default="?")


class ResultStore:
    """Content-addressed cache of simulation/experiment results.

    ``get``/``put`` address entries by *key* — any canonical-JSON-able
    mapping; the store fingerprints it and never interprets its contents
    beyond the audit copy written into the envelope.  A *sink* (any
    :class:`~repro.obs.sink.MetricsSink`) receives one ``on_store_event``
    per lookup/write so cache behavior lands in the same metrics pipeline
    as the simulations themselves.

    Instances are thread-safe: ``get``/``put``/``gc``/``verify`` serialize
    on an in-process re-entrant mutex (the :class:`~repro.store.lock.FileLock`
    only excludes other *processes*), so one store can back a thread-pool
    of ``repro-serve`` lane workers without corrupting its counters or
    interleaving sink events.
    """

    def __init__(self, root: str, *, sink: Optional[MetricsSink] = None) -> None:
        self.root = str(root)
        self.counts = StoreCounts()
        self._sink = sink
        self._mutex = threading.RLock()
        os.makedirs(self._objects_dir(), exist_ok=True)

    # -- layout ---------------------------------------------------------------

    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def _lock_path(self) -> str:
        return os.path.join(self.root, ".lock")

    def _entry_path(self, fp: str) -> str:
        return os.path.join(self._objects_dir(), fp[:2], f"{fp}.json")

    def lock(self) -> FileLock:
        """The store-wide writer lock (shared with orchestrator manifests)."""
        return FileLock(self._lock_path())

    # -- events -----------------------------------------------------------------

    def _event(self, kind: str, event: str) -> None:
        if event == "hit":
            self.counts.hits += 1
        elif event == "miss":
            self.counts.misses += 1
        elif event == "put":
            self.counts.puts += 1
        elif event == "corrupt":
            self.counts.corrupt += 1
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown store event {event!r}")
        if self._sink is not None:
            self._sink.on_store_event(kind, event)

    # -- core operations --------------------------------------------------------

    def get(self, key: Mapping[str, Any], *, kind: str) -> Optional[Dict[str, Any]]:
        """The payload cached under *key*, or ``None`` on miss.

        Corrupt entries (unparsable, wrong format/kind, checksum mismatch)
        are counted, deleted best-effort and reported as a miss — the
        caller recomputes, never crashes.
        """
        fp = fingerprint(key)
        path = self._entry_path(fp)
        with self._mutex:
            try:
                with open(path, encoding="utf-8") as fh:
                    envelope = json.load(fh)
            except FileNotFoundError:
                self._event(kind, "miss")
                return None
            except (OSError, ValueError):
                self._discard_corrupt(kind, path)
                return None
            payload = self._validate_envelope(envelope, fp, kind)
            if payload is None:
                self._discard_corrupt(kind, path)
                return None
            # Touch for LRU: gc evicts the least recently *used*, not written.
            with contextlib.suppress(OSError):
                os.utime(path)
            self._event(kind, "hit")
            return payload

    def put(self, key: Mapping[str, Any], payload: Mapping[str, Any], *, kind: str) -> str:
        """Cache *payload* under *key*; returns the entry's fingerprint.

        Atomic and lock-serialized: concurrent writers of the same cell
        produce identical bytes, so last-write-wins is harmless.
        """
        fp = fingerprint(key)
        path = self._entry_path(fp)
        envelope_payload = json.loads(canonical_json(payload))
        envelope = {
            "format": STORE_FORMAT,
            "kind": str(kind),
            "fingerprint": fp,
            "key": json.loads(canonical_json(key)),
            "payload": envelope_payload,
            "payload_sha256": sha256_text(canonical_json(envelope_payload)),
        }
        text = json.dumps(envelope, sort_keys=True, indent=None, separators=(",", ":"))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with self._mutex:
            with self.lock():
                fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as fh:
                        fh.write(text)
                    os.replace(tmp, path)
                except BaseException:
                    with contextlib.suppress(OSError):
                        os.unlink(tmp)
                    raise
            self._event(kind, "put")
        return fp

    def has_fingerprint(self, fp: str) -> bool:
        """Lock-free existence probe by fingerprint — no counters, no parsing.

        The claim/drain machinery (:mod:`repro.store.claims`) polls this
        while waiting on foreign owners; it deliberately bypasses the
        hit/miss counters so a wait loop doesn't masquerade as cache
        traffic.  A corrupt entry reads as present here — the eventual
        :meth:`get` still validates and recomputes.
        """
        return os.path.exists(self._entry_path(str(fp)))

    def contains(self, key: Mapping[str, Any]) -> bool:
        """:meth:`has_fingerprint` for a canonical *key* (fingerprints it)."""
        return self.has_fingerprint(fingerprint(key))

    # -- validation ---------------------------------------------------------------

    def _validate_envelope(
        self, envelope: Any, fp: str, kind: str
    ) -> Optional[Dict[str, Any]]:
        """The envelope's payload if every integrity check passes, else ``None``."""
        if not isinstance(envelope, dict):
            return None
        if envelope.get("format") != STORE_FORMAT:
            return None
        if envelope.get("kind") != kind:
            return None
        if envelope.get("fingerprint") != fp:
            return None
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            return None
        try:
            digest = sha256_text(canonical_json(payload))
        except TypeError:  # pragma: no cover - payload came from JSON
            return None
        if envelope.get("payload_sha256") != digest:
            return None
        return payload

    def _discard_corrupt(self, kind: str, path: str) -> None:
        self._event(kind, "corrupt")
        self._event(kind, "miss")
        with contextlib.suppress(OSError):
            # Read-path best-effort cleanup: readers never lock (writes are
            # atomic os.replace, so the worst case is deleting a just-rewritten
            # entry, which the next writer recreates).
            os.unlink(path)  # repro: noqa[A-LOCK]

    # -- maintenance ------------------------------------------------------------

    def entries(self) -> List[StoreEntry]:
        """All on-disk entries, least recently used first."""
        found: List[StoreEntry] = []
        objects = self._objects_dir()
        if not os.path.isdir(objects):
            return found
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                found.append(
                    StoreEntry(
                        fingerprint=name[: -len(".json")],
                        path=path,
                        size=int(stat.st_size),
                        mtime=float(stat.st_mtime),
                        kind=self._peek_kind(path),
                    )
                )
        found.sort(key=lambda e: (e.mtime, e.fingerprint))
        return found

    def _peek_kind(self, path: str) -> str:
        try:
            with open(path, encoding="utf-8") as fh:
                envelope = json.load(fh)
        except (OSError, ValueError):
            return "?"
        if isinstance(envelope, dict) and isinstance(envelope.get("kind"), str):
            return str(envelope["kind"])
        return "?"

    def total_bytes(self) -> int:
        """Sum of all entry sizes on disk."""
        return sum(e.size for e in self.entries())

    def gc(self, max_bytes: int, *, dry_run: bool = False) -> List[StoreEntry]:
        """Evict least-recently-used entries until the store fits *max_bytes*.

        Returns the evicted (or, with ``dry_run``, would-be-evicted)
        entries.  Eviction order is ``(mtime, fingerprint)`` — reads touch
        mtime, so this is LRU with a deterministic tie-break.
        """
        if isinstance(max_bytes, bool) or not isinstance(max_bytes, int):
            raise TypeError(f"max_bytes must be an integer, got {type(max_bytes).__name__}")
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        evicted: List[StoreEntry] = []
        with self._mutex, self.lock():
            entries = self.entries()
            total = sum(e.size for e in entries)
            for entry in entries:
                if total <= max_bytes:
                    break
                evicted.append(entry)
                total -= entry.size
                if not dry_run:
                    with contextlib.suppress(OSError):
                        os.unlink(entry.path)
        return evicted

    def verify(self, *, delete: bool = False) -> List[StoreEntry]:
        """Re-checksum every entry; returns the corrupt ones.

        With ``delete=True`` corrupt entries are also removed (the next
        lookup would do the same lazily — this just does it eagerly).  The
        checksum scan itself runs lock-free like every read; only the
        deletion pass takes the store lock, so verify cannot race a writer
        re-publishing an entry it is about to unlink.
        """
        corrupt: List[StoreEntry] = []
        for entry in self.entries():
            try:
                with open(entry.path, encoding="utf-8") as fh:
                    envelope = json.load(fh)
            except (OSError, ValueError):
                envelope = None
            kind = envelope.get("kind") if isinstance(envelope, dict) else None
            ok = (
                isinstance(kind, str)
                and self._validate_envelope(envelope, entry.fingerprint, kind) is not None
            )
            if not ok:
                corrupt.append(entry)
        if delete and corrupt:
            with self._mutex, self.lock():
                for entry in corrupt:
                    with contextlib.suppress(OSError):
                        os.unlink(entry.path)
        return corrupt

    def __iter__(self) -> Iterator[StoreEntry]:
        return iter(self.entries())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.counts
        return (
            f"ResultStore({self.root!r}, hits={c.hits}, misses={c.misses}, "
            f"puts={c.puts}, corrupt={c.corrupt})"
        )
