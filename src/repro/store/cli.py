"""``repro-store`` — inspect and maintain a result-cache directory.

Examples::

    repro-store stats cache/
    repro-store ls cache/ --kind replicate-cell
    repro-store gc cache/ --max-bytes 33554432
    repro-store verify cache/ --delete
    repro-store claims cache/ --stale-after 30 --break-stale
    repro-store journal cache/ --job <id> --repair
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro.store.cache import ResultStore
from repro.store.claims import ClaimRegistry
from repro.store.journal import Journal

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-store`` argument parser (kept separate for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Inspect and maintain a repro result-cache directory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="entry counts and total size")
    stats.add_argument("root", help="cache directory (as passed to --cache)")

    ls = sub.add_parser("ls", help="list entries, least recently used first")
    ls.add_argument("root", help="cache directory")
    ls.add_argument("--kind", default=None, help="only entries of this kind")

    gc = sub.add_parser("gc", help="evict least-recently-used entries over a size budget")
    gc.add_argument("root", help="cache directory")
    gc.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        help="shrink the store to at most this many bytes of entries",
    )
    gc.add_argument("--dry-run", action="store_true", help="report evictions without deleting")

    verify = sub.add_parser("verify", help="re-checksum every entry, report corruption")
    verify.add_argument("root", help="cache directory")
    verify.add_argument("--delete", action="store_true", help="also delete corrupt entries")

    claims = sub.add_parser("claims", help="list cell claim files; optionally break stale ones")
    claims.add_argument("root", help="cache directory")
    claims.add_argument(
        "--stale-after",
        type=float,
        default=30.0,
        metavar="S",
        help="heartbeat age (seconds) past which a claim counts as stale (default: 30)",
    )
    claims.add_argument(
        "--break-stale",
        action="store_true",
        help="unlink stale claims so survivors can steal the cells immediately",
    )

    journal = sub.add_parser("journal", help="inspect (or repair) the request journal")
    journal.add_argument("root", help="cache directory")
    journal.add_argument("--job", default=None, help="show one job's finished/pending cells")
    journal.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt journal lines (moved to journal/quarantine)",
    )
    return parser


def _require_store(root: str) -> ResultStore:
    if not os.path.isdir(root):
        raise SystemExit(f"no such cache directory: {root}")
    return ResultStore(root)


def _stats(args: argparse.Namespace) -> int:
    store = _require_store(args.root)
    entries = store.entries()
    by_kind: Dict[str, int] = {}
    for entry in entries:
        by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
    total = sum(e.size for e in entries)
    print(f"{args.root}: {len(entries)} entries, {total} bytes")
    for kind in sorted(by_kind):
        print(f"  {kind:16s} {by_kind[kind]}")
    return 0


def _ls(args: argparse.Namespace) -> int:
    store = _require_store(args.root)
    for entry in store.entries():
        if args.kind is not None and entry.kind != args.kind:
            continue
        print(f"{entry.fingerprint}  {entry.kind:16s} {entry.size:8d} B")
    return 0


def _gc(args: argparse.Namespace) -> int:
    store = _require_store(args.root)
    if args.max_bytes < 0:
        raise SystemExit("--max-bytes must be >= 0")
    evicted = store.gc(args.max_bytes, dry_run=args.dry_run)
    verb = "would evict" if args.dry_run else "evicted"
    print(f"{verb} {len(evicted)} entries ({sum(e.size for e in evicted)} bytes); "
          f"store now {store.total_bytes()} bytes")
    return 0


def _verify(args: argparse.Namespace) -> int:
    store = _require_store(args.root)
    corrupt = store.verify(delete=args.delete)
    if not corrupt:
        print(f"{args.root}: all {len(store.entries())} entries verify")
        return 0
    for entry in corrupt:
        print(f"corrupt: {entry.fingerprint} ({entry.path})")
    print(f"{len(corrupt)} corrupt entries" + (" deleted" if args.delete else ""))
    return 1


def _claims(args: argparse.Namespace) -> int:
    store = _require_store(args.root)
    registry = ClaimRegistry(store, stale_after=args.stale_after)
    active = registry.active()
    for info in active:
        state = "stale" if registry.is_stale(info) else "live"
        print(f"{info.fingerprint}  {state:5s}  owner={info.owner}  heartbeat={info.heartbeat:.1f}")
    if args.break_stale:
        broken = registry.break_stale()
        print(f"broke {broken} stale claims")
    elif not active:
        print(f"{args.root}: no claims")
    return 0


def _journal(args: argparse.Namespace) -> int:
    store = _require_store(args.root)
    journal = Journal(store)
    if args.repair:
        quarantined = journal.repair()
        print(f"quarantined {quarantined} corrupt lines")
    replayed = journal.replay()
    print(f"{args.root}: {len(replayed.records)} records, {replayed.corrupt} corrupt")
    if args.job is not None:
        status = journal.job_status(args.job, store=store)
        if status is None:
            print(f"unknown job {args.job}")
            return 1
        print(
            f"job {args.job}: done={status['done']} "
            f"finished={len(status['finished'])} pending={len(status['pending'])}"
        )
        for fp in status["pending"]:
            print(f"  pending: {fp} ({status['cells'][fp]})")
    else:
        for job in journal.jobs():
            print(f"  job {job}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-store`` console script."""
    args = build_parser().parse_args(argv)
    handlers = {
        "stats": _stats,
        "ls": _ls,
        "gc": _gc,
        "verify": _verify,
        "claims": _claims,
        "journal": _journal,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
