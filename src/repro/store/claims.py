"""Cross-process cell claims: work-stealing without a coordinator.

The :class:`~repro.store.cache.ResultStore` already lets many processes
share one cache directory — writes are atomic and lock-serialized — but
nothing stops two cold processes from *computing* the same cell twice.
This module adds the missing arbitration: a **claim file** per cell
fingerprint under ``<root>/claims/``, created with ``O_CREAT | O_EXCL`` so
exactly one process wins each cell, carrying the owner's identity and a
heartbeat timestamp::

    {
      "format": "repro.store.claim/1",
      "fingerprint": "<sha256 of the cell key>",
      "owner": "<host>:<pid>:<counter>",
      "pid": 12345,
      "host": "worker-a",
      "created": 1699999999.1,
      "heartbeat": 1700000002.7
    }

Liveness follows the :mod:`repro.store.lock` stale-breaking pattern: an
owner refreshes ``heartbeat`` while it computes (see
:class:`HeartbeatTicker`); a claim whose heartbeat is older than
``stale_after`` is presumed abandoned by a dead process and may be broken
and re-claimed ("stolen") by anyone.  Release happens explicitly after the
owner's ``put`` lands; release-on-crash is implicit — the heartbeat stops
and the claim goes stale.

Mutation discipline (the A-LOCK analyzer enforces this): claim *creation*
is a lone ``os.open(..., O_EXCL)`` — the atomic create is itself the
arbitration, no lock needed — while every rewrite or unlink of an existing
claim runs under the store's :class:`~repro.store.lock.FileLock` so a
steal can re-verify staleness without racing the owner's heartbeat.

:func:`drain_cells` builds the coordinator-free worker loop on top: N
independent processes walk one cell manifest, skip cells already in the
store, claim-or-skip the rest, and poll until the grid is drained.  Two
workers never compute the same cell; a SIGKILLed worker's cells go stale
and are finished by the survivors.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, TypeVar

from repro.obs.sink import MetricsSink
from repro.store.cache import ResultStore
from repro.store.journal import Journal

__all__ = [
    "CLAIM_FORMAT",
    "ClaimInfo",
    "ClaimRegistry",
    "DrainStats",
    "DrainTimeout",
    "HeartbeatTicker",
    "drain_cells",
]

#: Format tag written into every claim file; unknown tags read as corrupt.
CLAIM_FORMAT = "repro.store.claim/1"

#: Per-process counter so two registries in one process get distinct owners.
_OWNER_LOCK = threading.Lock()
_OWNER_SERIAL = 0

_T = TypeVar("_T")


def _next_owner() -> str:
    """A process-unique owner token: ``<host>:<pid>:<serial>``."""
    global _OWNER_SERIAL
    with _OWNER_LOCK:
        _OWNER_SERIAL += 1
        serial = _OWNER_SERIAL
    return f"{socket.gethostname()}:{os.getpid()}:{serial}"


@dataclass(frozen=True)
class ClaimInfo:
    """One parsed claim file (a snapshot — the owner may refresh it)."""

    fingerprint: str
    owner: str
    pid: int
    host: str
    created: float
    heartbeat: float


class DrainTimeout(RuntimeError):
    """Raised when :func:`drain_cells` ran out of time with cells pending."""


@dataclass
class DrainStats:
    """What one :func:`drain_cells` pass over a manifest accomplished."""

    #: Cells this process claimed and computed.
    computed: int = 0
    #: Cells already present in the store when visited (someone else's work).
    cached: int = 0
    #: Poll sleeps spent waiting on cells claimed by other live owners.
    waits: int = 0

    def total(self) -> int:
        """Cells accounted for (computed here or found cached)."""
        return self.computed + self.cached


class ClaimRegistry:
    """Claim files next to one store's cache entries.

    One registry represents one *owner* (one worker process, or one
    service instance).  ``clock`` is injectable for deterministic tests;
    the default is wall time because heartbeats must be comparable across
    processes.  A *sink* receives ``on_store_event("claim", ...)`` with
    events ``claim`` (fresh claim), ``steal`` (stale claim broken and
    re-claimed) and ``release``.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        owner: Optional[str] = None,
        stale_after: float = 30.0,
        clock: Callable[[], float] = time.time,
        sink: Optional[MetricsSink] = None,
    ) -> None:
        if stale_after <= 0:
            raise ValueError(f"stale_after must be positive, got {stale_after}")
        self._store = store
        self.owner = str(owner) if owner is not None else _next_owner()
        self.stale_after = float(stale_after)
        self._clock = clock
        self._sink = sink
        self.counts: Dict[str, int] = {
            "claimed": 0,
            "stolen": 0,
            "released": 0,
            "lost": 0,
        }
        os.makedirs(self._claims_dir(), exist_ok=True)

    # -- layout ---------------------------------------------------------------

    def _claims_dir(self) -> str:
        return os.path.join(self._store.root, "claims")

    def _claim_path(self, fp: str) -> str:
        return os.path.join(self._claims_dir(), f"{fp}.json")

    # -- events ---------------------------------------------------------------

    def _count(self, counter: str, event: str) -> None:
        self.counts[counter] += 1
        if self._sink is not None:
            self._sink.on_store_event("claim", event)

    # -- reading --------------------------------------------------------------

    def read_claim(self, fp: str) -> Optional[ClaimInfo]:
        """The current claim on *fp*, or ``None`` if absent/unreadable."""
        try:
            with open(self._claim_path(fp), encoding="utf-8") as fh:
                raw = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict) or raw.get("format") != CLAIM_FORMAT:
            return None
        try:
            return ClaimInfo(
                fingerprint=str(raw["fingerprint"]),
                owner=str(raw["owner"]),
                pid=int(raw["pid"]),
                host=str(raw["host"]),
                created=float(raw["created"]),
                heartbeat=float(raw["heartbeat"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def is_stale(self, info: ClaimInfo) -> bool:
        """Whether *info*'s heartbeat is older than ``stale_after``."""
        return (self._clock() - info.heartbeat) > self.stale_after

    def active(self) -> List[ClaimInfo]:
        """All parseable claims currently on disk, sorted by fingerprint."""
        claims: List[ClaimInfo] = []
        directory = self._claims_dir()
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return claims
        for name in names:
            if not name.endswith(".json"):
                continue
            info = self.read_claim(name[: -len(".json")])
            if info is not None:
                claims.append(info)
        return claims

    # -- claiming -------------------------------------------------------------

    def _payload(self, fp: str, created: float) -> bytes:
        record = {
            "format": CLAIM_FORMAT,
            "fingerprint": fp,
            "owner": self.owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "created": created,
            "heartbeat": self._clock(),
        }
        return (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")

    def _create(self, fp: str) -> bool:
        """One ``O_EXCL`` create attempt; the create IS the arbitration."""
        path = self._claim_path(fp)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(fd, self._payload(fp, created=self._clock()))
        finally:
            os.close(fd)
        return True

    def _expired(self, fp: str, info: Optional[ClaimInfo]) -> bool:
        """Whether the claim on *fp* may be broken (stale or corrupt-and-old)."""
        if info is not None:
            return self.is_stale(info)
        # Unreadable claim: fall back to file age (lock.py's mtime heuristic)
        # so a torn write microseconds old is never broken prematurely.
        try:
            age = time.time() - os.path.getmtime(self._claim_path(fp))
        except OSError:
            return True  # vanished meanwhile: nothing left to respect
        return age > self.stale_after

    def _break_claim(self, fp: str, expected: Optional[ClaimInfo]) -> bool:
        """Unlink a presumed-dead claim, re-verifying under the store lock."""
        path = self._claim_path(fp)
        with self._store.lock():
            current = self.read_claim(fp)
            if current is not None:
                unchanged = expected is not None and (
                    current.owner == expected.owner
                    and current.heartbeat == expected.heartbeat
                )
                if not unchanged:
                    # Refreshed or re-claimed while we deliberated: back off.
                    return False
            with contextlib.suppress(OSError):
                os.unlink(path)
        return True

    def try_claim(self, fp: str) -> bool:
        """Claim *fp* for this owner; ``True`` iff we now hold it.

        Never blocks: a live foreign claim returns ``False`` immediately.
        A stale (or old-and-corrupt) claim is broken under the store lock
        and re-claimed — the ``steal`` path that makes crashed workers'
        cells finishable by survivors.
        """
        if self._create(fp):
            self._count("claimed", "claim")
            return True
        info = self.read_claim(fp)
        if info is not None and info.owner == self.owner:
            return True  # idempotent re-claim of our own cell
        if not self._expired(fp, info):
            return False
        if not self._break_claim(fp, info):
            return False
        if self._create(fp):
            self._count("stolen", "steal")
            return True
        return False  # another thief won the re-create race

    def heartbeat(self, fp: str) -> bool:
        """Refresh our claim's heartbeat; ``False`` if the claim was lost."""
        path = self._claim_path(fp)
        with self._store.lock():
            info = self.read_claim(fp)
            if info is None or info.owner != self.owner:
                return False
            record = {
                "format": CLAIM_FORMAT,
                "fingerprint": info.fingerprint,
                "owner": self.owner,
                "pid": info.pid,
                "host": info.host,
                "created": info.created,
                "heartbeat": self._clock(),
            }
            text = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            fd, tmp = tempfile.mkstemp(dir=self._claims_dir(), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(text)
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        return True

    def release(self, fp: str) -> bool:
        """Drop our claim on *fp*; ``False`` if it was already stolen/gone."""
        path = self._claim_path(fp)
        with self._store.lock():
            info = self.read_claim(fp)
            if info is None or info.owner != self.owner:
                self.counts["lost"] += 1
                return False
            with contextlib.suppress(OSError):
                os.unlink(path)
        self._count("released", "release")
        return True

    def break_stale(self) -> int:
        """Unlink every stale claim on disk; returns how many were broken."""
        broken = 0
        for info in self.active():
            if self.is_stale(info) and self._break_claim(info.fingerprint, info):
                broken += 1
        return broken

    def ticker(self, fingerprints: List[str], *, interval: Optional[float] = None) -> "HeartbeatTicker":
        """A :class:`HeartbeatTicker` keeping *fingerprints* alive."""
        return HeartbeatTicker(self, fingerprints, interval=interval)


class HeartbeatTicker:
    """Background thread refreshing claim heartbeats while a compute runs.

    Use as a context manager around the owner's long computation::

        with registry.ticker([fp]):
            compute_and_put(cell)

    The tick interval defaults to ``stale_after / 4`` so a healthy owner
    refreshes several times per staleness window; a SIGKILL stops the
    ticks (daemon thread) and the claim goes stale on schedule.
    """

    def __init__(
        self,
        registry: ClaimRegistry,
        fingerprints: List[str],
        *,
        interval: Optional[float] = None,
    ) -> None:
        self._registry = registry
        self._fingerprints = list(fingerprints)
        if interval is None:
            interval = max(0.05, registry.stale_after / 4.0)
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._interval = float(interval)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        """Spawn the ticker thread (idempotent)."""
        if self._thread is not None or not self._fingerprints:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-claim-heartbeat", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            for fp in self._fingerprints:
                with contextlib.suppress(OSError):
                    self._registry.heartbeat(fp)

    def stop(self) -> None:
        """Stop ticking and join the thread."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=10.0)

    def __enter__(self) -> "HeartbeatTicker":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def drain_cells(
    store: ResultStore,
    cells: Mapping[str, _T],
    compute: Callable[[_T], None],
    *,
    claims: ClaimRegistry,
    journal: Optional[Journal] = None,
    job: Optional[str] = None,
    poll_interval: float = 0.05,
    timeout: Optional[float] = None,
) -> DrainStats:
    """Drain a cell manifest cooperatively with any number of peers.

    *cells* maps each cell's store fingerprint to an opaque work item;
    *compute* must, given the item, compute the cell **and write it into
    the store** (so peers observe completion via the entry's existence).

    Each pass over the still-pending fingerprints: a cell already in the
    store is done (counted ``cached``); otherwise the cell is claimed
    through *claims* — on success this process computes it (heartbeating
    throughout, journaling ``claimed → computed → flushed`` when a
    *journal* is given) and releases the claim; on failure the cell is
    simply revisited next pass, by which time the foreign owner has either
    finished it or died and left a stale claim to steal.  Between passes
    that made no progress the loop sleeps *poll_interval* seconds.

    Raises :class:`DrainTimeout` if *timeout* elapses with cells pending,
    and re-raises immediately (after releasing the claim) if *compute*
    fails — a crashing worker must not silently swallow its cells.
    """
    if poll_interval <= 0:
        raise ValueError(f"poll_interval must be positive, got {poll_interval}")
    pending: Dict[str, _T] = dict(cells)
    stats = DrainStats()
    deadline = None if timeout is None else time.monotonic() + float(timeout)
    while pending:
        progressed = False
        for fp in list(pending):
            if store.has_fingerprint(fp):
                pending.pop(fp)
                stats.cached += 1
                progressed = True
                continue
            if not claims.try_claim(fp):
                continue
            try:
                if journal is not None:
                    journal.append("claimed", fp, job=job, owner=claims.owner)
                with claims.ticker([fp]):
                    compute(pending[fp])
                if journal is not None:
                    journal.append("computed", fp, job=job, owner=claims.owner)
                    if store.has_fingerprint(fp):
                        journal.append("flushed", fp, job=job, owner=claims.owner)
            finally:
                claims.release(fp)
            pending.pop(fp)
            stats.computed += 1
            progressed = True
        if pending and not progressed:
            if deadline is not None and time.monotonic() >= deadline:
                raise DrainTimeout(
                    f"{len(pending)} cells still pending after {timeout}s "
                    "(foreign claims never resolved)"
                )
            stats.waits += 1
            time.sleep(poll_interval)
    return stats
