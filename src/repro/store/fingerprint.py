"""Canonical cache keys: deterministic JSON and sha256 fingerprints.

A cache key is a plain mapping describing everything that determines a
result's bits: the strategy spec, the platform spec, the seed entropy, the
fault schedule and the engine version tag.  Two keys address the same cache
entry iff their canonical JSON encodings are byte-identical, so the encoder
here is deliberately strict — sorted keys, compact separators, no NaN/Inf,
and loud rejection of anything JSON cannot represent faithfully.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.utils.rng import SeedLike

__all__ = [
    "ENGINE_VERSION",
    "Token",
    "canonical_json",
    "fingerprint",
    "seed_token",
    "sha256_text",
    "spec_token",
]

#: Version tag of the simulation engine's *observable behavior*, mixed into
#: every cache key.  Bump it whenever a change alters any simulation output
#: bit-for-bit (engine event order, RNG consumption, aggregation order…):
#: bumping invalidates every cached cell at once, which is always safe —
#: stale hits are never detected, so the tag errs on the side of recompute.
ENGINE_VERSION = "repro-engine/1"

#: Value types a key may contain after normalization.
Token = Union[None, bool, int, float, str, List[Any], Dict[str, Any]]


def _normalize(obj: Any, path: str) -> Token:
    """Coerce *obj* to a canonical JSON-ready value, or raise ``TypeError``."""
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)) and not isinstance(obj, bool):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        if math.isnan(value) or math.isinf(value):
            raise TypeError(f"non-finite float at {path} cannot be fingerprinted")
        return value
    if isinstance(obj, (list, tuple)):
        return [_normalize(v, f"{path}[{i}]") for i, v in enumerate(obj)]
    if isinstance(obj, np.ndarray):
        return [_normalize(v, f"{path}[{i}]") for i, v in enumerate(obj.tolist())]
    if isinstance(obj, dict):
        out: Dict[str, Any] = {}
        for k in obj:
            if not isinstance(k, str):
                raise TypeError(f"non-string mapping key {k!r} at {path}")
            out[k] = _normalize(obj[k], f"{path}.{k}")
        return out
    raise TypeError(f"cannot canonicalize {type(obj).__name__} at {path}")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding: sorted keys, compact, tuples as lists.

    The encoding is injective on the supported value types (None, bool,
    int, finite float, str, and lists/dicts thereof; numpy scalars and
    arrays are converted), so equal encodings mean equal keys.  Anything
    else raises ``TypeError`` rather than being silently stringified.
    """
    return json.dumps(
        _normalize(obj, "$"), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def sha256_text(text: str) -> str:
    """sha256 hex digest of a UTF-8 string (entry payload checksums)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint(key: Any) -> str:
    """sha256 hex digest of the key's canonical JSON encoding."""
    return sha256_text(canonical_json(key))


def seed_token(seed: SeedLike) -> Optional[Token]:
    """Canonical token for a seed, or ``None`` when the seed is uncacheable.

    Integers and :class:`~numpy.random.SeedSequence` instances fully
    determine the spawned per-repetition streams, so they tokenize.  ``None``
    (fresh OS entropy) and live :class:`~numpy.random.Generator` objects
    (hidden internal state) do not — callers must skip the cache for those.
    """
    if isinstance(seed, bool):
        return None
    if isinstance(seed, (int, np.integer)):
        return ["int", int(seed)]
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if entropy is None:
            return None
        entropy_list = list(entropy) if isinstance(entropy, (list, tuple)) else [int(entropy)]
        return [
            "seedseq",
            [int(e) for e in entropy_list],
            [int(k) for k in seed.spawn_key],
        ]
    return None


def spec_token(obj: Any) -> Optional[Token]:
    """The object's ``cache_token()``, or ``None`` when it has none.

    Factories that want their results cached expose a ``cache_token()``
    returning a canonical-JSON-able description of everything the factory's
    output depends on (the ``*Spec`` classes in
    :mod:`repro.experiments.parallel` all do).  Arbitrary closures don't,
    and ``None`` tells the caller to bypass the cache for them.
    """
    method = getattr(obj, "cache_token", None)
    if method is None or not callable(method):
        return None
    token = method()
    if token is None:
        return None
    try:
        return _normalize(token, "$")
    except TypeError:
        return None  # token not canonical-JSON-able: treat as uncacheable
