"""Cache keys and payloads for the experiment runner's replicate cells.

A *replicate cell* is one figure point: ``reps`` independent simulations of
one (strategy, platform, n) configuration, aggregated to a
:class:`~repro.utils.stats.Summary`.  The key captures everything the cell's
bits depend on — the factory specs' ``cache_token()``, the resolved seed
entropy, the repetition count, the engine version tag and whether metrics
were collected (metric collection changes nothing numerically but the cached
payload must carry the per-repetition sink snapshots to replay the fold).

Uncacheable inputs — closure factories without a ``cache_token()``, seeds
with hidden state — make :func:`replicate_cell_key` return ``None``, and the
runner silently computes without the cache.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.sink import MetricsSink
from repro.store.cache import ResultStore
from repro.store.fingerprint import ENGINE_VERSION, seed_token, spec_token
from repro.utils.rng import SeedLike
from repro.utils.stats import Summary

__all__ = [
    "CELL_KIND",
    "CELL_SCHEMA",
    "Snapshot",
    "load_cell",
    "replicate_cell_key",
    "save_cell",
    "summary_from_payload",
    "summary_to_payload",
]

#: Schema tag inside every replicate-cell key; bump on key-shape changes.
CELL_SCHEMA = "repro.store.cell/1"

#: Entry kind replicate cells are stored under.
CELL_KIND = "replicate-cell"

#: A repetition sink snapshot (see :meth:`repro.obs.sink.MetricsSink.snapshot`).
Snapshot = Dict[str, Any]


def replicate_cell_key(
    *,
    strategy_factory: Callable[..., Any],
    platform_factory: Callable[..., Any],
    n: int,
    reps: int,
    seed: SeedLike,
    metrics: bool,
) -> Optional[Dict[str, Any]]:
    """The cell's cache key, or ``None`` when any input is uncacheable."""
    strategy_tok = spec_token(strategy_factory)
    platform_tok = spec_token(platform_factory)
    seed_tok = seed_token(seed)
    if strategy_tok is None or platform_tok is None or seed_tok is None:
        return None
    return {
        "schema": CELL_SCHEMA,
        "engine": ENGINE_VERSION,
        "strategy": strategy_tok,
        "platform": platform_tok,
        "n": int(n),
        "reps": int(reps),
        "seed": seed_tok,
        "metrics": bool(metrics),
    }


def summary_to_payload(
    summary: Summary, snapshots: Optional[List[Snapshot]]
) -> Dict[str, Any]:
    """JSON-ready payload for a computed cell (summary + sink snapshots)."""
    return {
        "summary": {
            "n": summary.n,
            "mean": summary.mean,
            "std": summary.std,
            "min": summary.min,
            "max": summary.max,
        },
        "snapshots": snapshots,
    }


def summary_from_payload(
    payload: Dict[str, Any]
) -> Tuple[Summary, Optional[List[Snapshot]]]:
    """Rebuild ``(summary, snapshots)`` from :func:`summary_to_payload` output.

    JSON round-trips Python floats exactly (shortest-repr encoding), so the
    rebuilt :class:`~repro.utils.stats.Summary` is bit-identical to the one
    originally computed — which is what keeps cached CSV output byte-equal
    to an uncached run.
    """
    raw = payload["summary"]
    summary = Summary(
        n=int(raw["n"]),
        mean=float(raw["mean"]),
        std=float(raw["std"]),
        min=float(raw["min"]),
        max=float(raw["max"]),
    )
    snapshots = payload.get("snapshots")
    if snapshots is not None and not isinstance(snapshots, list):
        raise TypeError(f"snapshots must be a list or None, got {type(snapshots).__name__}")
    return summary, snapshots


def load_cell(
    store: ResultStore,
    key: Dict[str, Any],
    *,
    sink: Optional[MetricsSink] = None,
) -> Optional[Summary]:
    """Fetch a cell from *store*, replaying its metric fold into *sink*.

    Returns ``None`` on a miss (or an unusable payload, which is treated
    as a miss).  On a hit with a *sink*, the cached per-repetition
    snapshots are absorbed **in repetition order** — the identical fold
    sequence the live runner uses, so accumulated metrics match a real run
    bit for bit.
    """
    payload = store.get(key, kind=CELL_KIND)
    if payload is None:
        return None
    try:
        summary, snapshots = summary_from_payload(payload)
    except (KeyError, TypeError, ValueError):
        return None
    if key.get("metrics") and snapshots is None:
        return None  # entry predates its metrics; recompute to get them
    if sink is not None and snapshots is not None:
        for snapshot in snapshots:
            sink.absorb_snapshot(snapshot)
    return summary


def save_cell(
    store: ResultStore,
    key: Dict[str, Any],
    summary: Summary,
    snapshots: Optional[List[Snapshot]] = None,
) -> str:
    """Store a computed cell; returns the entry's fingerprint."""
    return store.put(key, summary_to_payload(summary, snapshots), kind=CELL_KIND)
