"""Figure-level resume manifests for interrupted sweeps.

The cell cache (:mod:`repro.store.cells`) already makes a restarted sweep
cheap — every completed cell is a hit.  The orchestrator adds the layer
above: it records, per (figure, scale, seed), the path and sha256 of the
CSV a finished figure produced, so ``repro-experiments run --resume`` can
skip completed figures entirely and only re-enter the generator for the
missing ones.  A manifest is only trusted when the recorded file still
exists *and* its checksum still matches — a truncated or hand-edited CSV
re-runs the figure rather than being silently believed.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.store.cache import ResultStore
from repro.store.fingerprint import ENGINE_VERSION, fingerprint, seed_token
from repro.utils.rng import SeedLike

__all__ = ["CELLS_SCHEMA", "MANIFEST_SCHEMA", "SweepOrchestrator", "file_sha256"]

#: Schema tag inside every figure manifest; bump on key-shape changes.
MANIFEST_SCHEMA = "repro.store.sweep/1"

#: Schema tag inside every cell manifest (the planned grid of a figure).
CELLS_SCHEMA = "repro.store.sweep-cells/1"


def file_sha256(path: str) -> str:
    """sha256 hex digest of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


class SweepOrchestrator:
    """Track which figures of a sweep already produced their CSV.

    One orchestrator serves one ``(scale, seed)`` configuration; each
    figure's manifest lives at ``<store root>/manifests/<fp>.json`` where
    ``fp`` fingerprints (schema, engine version, figure id, scale, seed).
    Seeds that cannot be tokenized (fresh entropy, live generators) make
    :attr:`resumable` false and every query a miss — the sweep still runs,
    it just cannot be resumed.
    """

    def __init__(self, store: ResultStore, *, scale: str, seed: SeedLike) -> None:
        self.store = store
        self.scale = str(scale)
        self._seed_tok = seed_token(seed)
        os.makedirs(self._manifests_dir(), exist_ok=True)

    def _manifests_dir(self) -> str:
        return os.path.join(self.store.root, "manifests")

    @property
    def resumable(self) -> bool:
        """Whether this sweep's configuration can be identified across runs."""
        return self._seed_tok is not None

    def figure_key(self, figure_id: str) -> Optional[Dict[str, Any]]:
        """The manifest key for *figure_id*, or ``None`` when unresumable."""
        if self._seed_tok is None:
            return None
        return {
            "schema": MANIFEST_SCHEMA,
            "engine": ENGINE_VERSION,
            "figure": str(figure_id),
            "scale": self.scale,
            "seed": self._seed_tok,
        }

    def _manifest_path(self, figure_id: str) -> Optional[str]:
        key = self.figure_key(figure_id)
        if key is None:
            return None
        return os.path.join(self._manifests_dir(), f"{fingerprint(key)}.json")

    def completed_csv(self, figure_id: str, csv_path: str) -> bool:
        """True iff *figure_id* already produced exactly the file *csv_path*.

        Checks that a manifest exists for this (figure, scale, seed), that
        it points at the same path, and that the file's bytes still hash to
        the recorded digest.  Any mismatch — including a missing or edited
        CSV — returns False so the caller regenerates.
        """
        path = self._manifest_path(figure_id)
        if path is None:
            return False
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            return False
        if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_SCHEMA:
            return False
        recorded = manifest.get("csv_path")
        digest = manifest.get("csv_sha256")
        if not isinstance(recorded, str) or not isinstance(digest, str):
            return False
        if os.path.abspath(recorded) != os.path.abspath(csv_path):
            return False
        try:
            return file_sha256(csv_path) == digest
        except OSError:
            return False

    # -- cell manifests ------------------------------------------------------

    def cells_key(self, figure_id: str) -> Optional[Dict[str, Any]]:
        """The cell-manifest key for *figure_id*, or ``None`` when unresumable."""
        if self._seed_tok is None:
            return None
        return {
            "schema": CELLS_SCHEMA,
            "engine": ENGINE_VERSION,
            "figure": str(figure_id),
            "scale": self.scale,
            "seed": self._seed_tok,
        }

    def _cells_path(self, figure_id: str) -> Optional[str]:
        key = self.cells_key(figure_id)
        if key is None:
            return None
        return os.path.join(self._manifests_dir(), f"{fingerprint(key)}.json")

    def write_cell_manifest(self, figure_id: str, fingerprints: "list[str]") -> Optional[str]:
        """Persist the planned cell grid of *figure_id*; returns the path.

        Every external worker plans the same deterministic grid and writes
        identical bytes, so concurrent writers are harmless (atomic
        replace under the store lock).  Returns ``None`` when the sweep
        configuration is unresumable.
        """
        path = self._cells_path(figure_id)
        if path is None:
            return None
        manifest = {
            "format": CELLS_SCHEMA,
            "figure": str(figure_id),
            "key": self.cells_key(figure_id),
            "cells": sorted(str(fp) for fp in fingerprints),
        }
        text = json.dumps(manifest, sort_keys=True, indent=2)
        with self.store.lock():
            fd, tmp = tempfile.mkstemp(dir=self._manifests_dir(), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(text)
                    fh.write("\n")
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        return path

    def cell_manifest(self, figure_id: str) -> "Optional[list[str]]":
        """The recorded cell fingerprints for *figure_id*, or ``None``.

        ``None`` means no (valid) manifest — unresumable seeds included;
        any structural anomaly reads as missing rather than crashing.
        """
        path = self._cells_path(figure_id)
        if path is None:
            return None
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict) or manifest.get("format") != CELLS_SCHEMA:
            return None
        cells = manifest.get("cells")
        if not isinstance(cells, list) or not all(isinstance(c, str) for c in cells):
            return None
        return list(cells)

    def mark_done(self, figure_id: str, csv_path: str) -> Optional[str]:
        """Record that *figure_id* produced *csv_path*; returns the manifest path.

        A no-op returning ``None`` when the sweep is unresumable.  The
        manifest write is atomic and serialized on the store's lock, so
        concurrent sweeps sharing one cache never interleave halves.
        """
        path = self._manifest_path(figure_id)
        if path is None:
            return None
        key = self.figure_key(figure_id)
        manifest = {
            "format": MANIFEST_SCHEMA,
            "figure": str(figure_id),
            "key": key,
            "csv_path": os.path.abspath(csv_path),
            "csv_sha256": file_sha256(csv_path),
        }
        text = json.dumps(manifest, sort_keys=True, indent=2)
        with self.store.lock():
            fd, tmp = tempfile.mkstemp(dir=self._manifests_dir(), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(text)
                    fh.write("\n")
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        return path
