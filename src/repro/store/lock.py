"""Advisory file locking so parallel replicates share one cache safely.

Writers (``put``, ``gc``, manifest updates) serialize on a single lock file
per store; readers never lock because every write is an atomic
``os.replace`` of a complete file.  ``fcntl.flock`` is used where available
(POSIX); elsewhere an ``O_EXCL`` lock file with stale-lock breaking keeps
the store usable, if slightly more conservative.
"""

from __future__ import annotations

import contextlib
import os
import time
from types import TracebackType
from typing import Optional, Type

try:  # pragma: no cover - platform-dependent import
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock", "LockTimeout"]

#: Age (seconds) past which an ``O_EXCL`` fallback lock file is presumed
#: abandoned by a dead process and broken.  Generous: cache writes are
#: small JSON files, never multi-minute operations.
_STALE_AFTER = 60.0


class LockTimeout(OSError):
    """Raised when the lock could not be acquired within the timeout."""


class FileLock:
    """A reentrant-unfriendly, inter-process advisory lock on one file.

    Use as a context manager::

        with FileLock(os.path.join(root, ".lock")):
            ...  # exclusive access to the store's mutating operations

    Acquisition polls (non-blocking attempt + short sleep) so a configurable
    *timeout* applies on every platform; the default is far above any real
    contention window for JSON-sized writes.
    """

    def __init__(self, path: str, *, timeout: float = 30.0, poll_interval: float = 0.02) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        self.path = str(path)
        self.timeout = float(timeout)
        self.poll_interval = float(poll_interval)
        self._fd: Optional[int] = None
        self._exclusive_file = False

    # -- acquisition strategies ---------------------------------------------

    def _try_flock(self) -> bool:
        """One non-blocking ``fcntl.flock`` attempt; True on success."""
        assert fcntl is not None
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        return True

    def _try_exclusive_create(self) -> bool:
        """One ``O_EXCL`` create attempt, breaking stale leftovers; True on success."""
        try:
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            with contextlib.suppress(OSError):
                if time.time() - os.path.getmtime(self.path) > _STALE_AFTER:
                    os.unlink(self.path)  # abandoned by a dead process
            return False
        self._fd = fd
        self._exclusive_file = True
        return True

    # -- public API -----------------------------------------------------------

    def acquire(self) -> None:
        """Block (poll) until the lock is held; raise :class:`LockTimeout`."""
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path!r} is already held by this object")
        attempt = self._try_flock if fcntl is not None else self._try_exclusive_create
        deadline = time.monotonic() + self.timeout
        while True:
            if attempt():
                return
            if time.monotonic() >= deadline:
                raise LockTimeout(f"could not acquire {self.path!r} within {self.timeout}s")
            time.sleep(self.poll_interval)

    def release(self) -> None:
        """Drop the lock; a no-op if it is not held."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if fcntl is not None and not self._exclusive_file:
            with contextlib.suppress(OSError):
                fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)
        if self._exclusive_file:
            self._exclusive_file = False
            with contextlib.suppress(OSError):
                os.unlink(self.path)

    @property
    def held(self) -> bool:
        """Whether this object currently holds the lock."""
        return self._fd is not None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()
