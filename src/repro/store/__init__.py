"""Content-addressed result cache and resumable sweep orchestration.

Paper-scale sweeps (``repro-experiments run all --scale paper``) are grids
of independent (strategy, platform, n, seed) cells — the canonical shape
for content-addressed memoization.  This package stores each cell's
aggregated result under a sha256 fingerprint of a canonical-JSON cache key
(strategy spec, platform spec, seed entropy, engine version tag, fault
schedule), so an interrupted sweep restarted with ``--resume --cache DIR``
recomputes only the missing cells and reproduces the uncached output bit
for bit.

Layered API:

* :mod:`repro.store.fingerprint` — canonical JSON, sha256 fingerprints,
  seed/spec tokens, the engine version tag;
* :mod:`repro.store.lock` — an advisory file lock so parallel replicates
  share one cache directory safely;
* :mod:`repro.store.cache` — :class:`ResultStore`, the on-disk object
  store with corruption detection and LRU garbage collection;
* :mod:`repro.store.cells` — cache keys/payloads for the experiment
  runner's replicate cells (:class:`~repro.utils.stats.Summary` values);
* :mod:`repro.store.results` — caching wrapper for single simulations
  (serialized :class:`~repro.simulator.results.SimulationResult` values);
* :mod:`repro.store.orchestrator` — figure-level resume manifests (and
  planned cell manifests) for ``repro-experiments run --resume`` and the
  multi-worker external mode;
* :mod:`repro.store.claims` — per-cell claim files with heartbeats and
  stale-claim stealing, so N processes share one cold store without
  duplicate computation (see docs/DISTRIBUTED.md);
* :mod:`repro.store.journal` — the append-only checksummed request
  journal that lets a killed service answer "was my sweep finished?";
* :mod:`repro.store.cli` — the ``repro-store`` maintenance tool
  (``stats``/``ls``/``gc``/``verify``/``claims``/``journal``).
"""

from __future__ import annotations

from repro.store.cache import ResultStore, StoreCounts
from repro.store.cells import replicate_cell_key
from repro.store.claims import ClaimRegistry, HeartbeatTicker, drain_cells
from repro.store.fingerprint import (
    ENGINE_VERSION,
    canonical_json,
    fingerprint,
    seed_token,
    spec_token,
)
from repro.store.journal import Journal
from repro.store.lock import FileLock
from repro.store.orchestrator import SweepOrchestrator
from repro.store.results import run_cached_simulation

__all__ = [
    "ENGINE_VERSION",
    "ClaimRegistry",
    "FileLock",
    "HeartbeatTicker",
    "Journal",
    "ResultStore",
    "StoreCounts",
    "SweepOrchestrator",
    "canonical_json",
    "drain_cells",
    "fingerprint",
    "replicate_cell_key",
    "run_cached_simulation",
    "seed_token",
    "spec_token",
]
