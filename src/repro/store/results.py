"""Caching wrapper around single simulation runs.

Where :mod:`repro.store.cells` caches *aggregated* replicate cells, this
module caches one :class:`~repro.simulator.results.SimulationResult` at a
time — the granularity of ``repro-report run`` and of the churn sweep's
per-schedule runs.  Payloads are the exact JSON documents produced by
:func:`repro.simulator.serialize.result_to_json` (which round-trips traces
and :class:`~repro.simulator.results.FaultStats` losslessly), plus the run's
sink snapshot when metrics were collected.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.core.strategies.registry import make_strategy
from repro.faults.engine import simulate_faulty
from repro.faults.models import FaultSchedule
from repro.obs.sink import MetricsSink, RecordingSink
from repro.platform.platform import Platform
from repro.simulator.engine import simulate
from repro.simulator.results import SimulationResult
from repro.simulator.serialize import result_from_json, result_to_json
from repro.store.cache import ResultStore
from repro.store.fingerprint import ENGINE_VERSION, seed_token
from repro.utils.rng import SeedLike

__all__ = ["RESULT_KIND", "RESULT_SCHEMA", "run_cached_simulation", "simulation_key"]

#: Schema tag inside every simulation key; bump on key-shape changes.
RESULT_SCHEMA = "repro.store.result/1"

#: Entry kind single simulations are stored under.
RESULT_KIND = "simulation"


def simulation_key(
    *,
    strategy_name: str,
    n: int,
    platform: Platform,
    seed: SeedLike,
    strategy_kwargs: Optional[Dict[str, Any]] = None,
    schedule: Optional[FaultSchedule] = None,
    metrics: bool = False,
) -> Optional[Dict[str, Any]]:
    """Cache key for one simulation, or ``None`` when the seed is uncacheable.

    The platform enters by its exact speed vector (floats round-trip JSON
    exactly), the strategy by registry name + constructor arguments, and the
    fault schedule by its fully pre-drawn event list.
    """
    seed_tok = seed_token(seed)
    if seed_tok is None:
        return None
    return {
        "schema": RESULT_SCHEMA,
        "engine": ENGINE_VERSION,
        "strategy": [str(strategy_name), int(n), dict(strategy_kwargs or {})],
        "platform": ["fixed", [float(s) for s in platform.speeds]],
        "seed": seed_tok,
        "schedule": None if schedule is None else schedule.cache_token(),
        "metrics": bool(metrics),
    }


def run_cached_simulation(
    store: Optional[ResultStore],
    *,
    strategy_name: str,
    n: int,
    platform: Platform,
    seed: SeedLike,
    strategy_kwargs: Optional[Dict[str, Any]] = None,
    schedule: Optional[FaultSchedule] = None,
    sink: Optional[MetricsSink] = None,
) -> SimulationResult:
    """Simulate (or fetch) one run, byte-identical either way.

    With ``store=None`` or an uncacheable seed this is exactly
    ``simulate(make_strategy(name, n), platform, rng=seed, sink=sink)``
    (or :func:`~repro.faults.engine.simulate_faulty` when a *schedule* is
    given).  Otherwise the serialized result is cached; on a hit the stored
    sink snapshot is replayed into *sink* so reports cannot tell a cached
    run from a fresh one.
    """
    key = (
        None
        if store is None
        else simulation_key(
            strategy_name=strategy_name,
            n=n,
            platform=platform,
            seed=seed,
            strategy_kwargs=strategy_kwargs,
            schedule=schedule,
            metrics=sink is not None,
        )
    )
    if store is not None and key is not None:
        payload = store.get(key, kind=RESULT_KIND)
        if payload is not None:
            cached: Optional[SimulationResult]
            try:
                cached = result_from_json(json.dumps(payload["result"]))
            except (KeyError, TypeError, ValueError):
                cached = None
            if cached is not None:
                if sink is not None and payload.get("snapshot") is not None:
                    sink.absorb_snapshot(payload["snapshot"])
                return cached

    strategy = make_strategy(strategy_name, n, **(strategy_kwargs or {}))
    run_sink: Optional[RecordingSink] = RecordingSink() if sink is not None else None
    if schedule is None:
        result = simulate(strategy, platform, rng=seed, sink=run_sink)
    else:
        result = simulate_faulty(
            strategy, platform, schedule=schedule, rng=seed, sink=run_sink
        )
    snapshot = None
    if run_sink is not None and sink is not None:
        snapshot = run_sink.snapshot()
        sink.absorb_snapshot(snapshot)
    if store is not None and key is not None:
        store.put(
            key,
            {"result": json.loads(result_to_json(result)), "snapshot": snapshot},
            kind=RESULT_KIND,
        )
    return result
