"""Block-level numerical kernels and references.

The computational model of the paper: vectors/matrices are split into
blocks of size ``l`` (``l x l`` for matrices); an outer-product task
combines two vector blocks into an ``l x l`` tile, a matmul task performs
one ``l x l`` GEMM update.  These helpers implement the block operations
and the whole-array references the replay engine validates against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "block_outer",
    "block_gemm_update",
    "reference_outer",
    "reference_matmul",
    "split_into_blocks",
    "assemble_outer",
]


def block_outer(a_block: np.ndarray, b_block: np.ndarray) -> np.ndarray:
    """Outer product of two size-``l`` vector blocks: an ``l x l`` tile."""
    a_block = np.asarray(a_block)
    b_block = np.asarray(b_block)
    if a_block.ndim != 1 or b_block.ndim != 1:
        raise ValueError("vector blocks must be 1-D")
    return np.outer(a_block, b_block)


def block_gemm_update(c_block: np.ndarray, a_block: np.ndarray, b_block: np.ndarray) -> None:
    """In-place GEMM update ``C += A @ B`` on ``l x l`` blocks."""
    if c_block.shape != (a_block.shape[0], b_block.shape[1]):
        raise ValueError(
            f"shape mismatch: C{c_block.shape} += A{a_block.shape} @ B{b_block.shape}"
        )
    c_block += a_block @ b_block


def reference_outer(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Ground-truth outer product of two full vectors."""
    return np.outer(np.asarray(a), np.asarray(b))


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Ground-truth product of two full matrices."""
    return np.asarray(a) @ np.asarray(b)


def split_into_blocks(vec: np.ndarray, n: int) -> np.ndarray:
    """Reshape a length-``n*l`` vector into ``(n, l)`` blocks."""
    vec = np.asarray(vec)
    if vec.ndim != 1:
        raise ValueError("expected a 1-D vector")
    if vec.size % n != 0:
        raise ValueError(f"vector length {vec.size} not divisible into {n} blocks")
    return vec.reshape(n, -1)


def assemble_outer(tiles: np.ndarray) -> np.ndarray:
    """Assemble an ``(n, n, l, l)`` tile array into the ``(n l, n l)`` matrix."""
    tiles = np.asarray(tiles)
    if tiles.ndim != 4 or tiles.shape[0] != tiles.shape[1] or tiles.shape[2] != tiles.shape[3]:
        raise ValueError(f"expected (n, n, l, l) tiles, got {tiles.shape}")
    n, _, l, _ = tiles.shape
    return tiles.transpose(0, 2, 1, 3).reshape(n * l, n * l)


def _as_blocked_matrix(mat: np.ndarray, n: int) -> Tuple[np.ndarray, int]:
    """View an ``(n l, n l)`` matrix as ``(n, n, l, l)`` blocks; returns (blocks, l)."""
    mat = np.asarray(mat)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {mat.shape}")
    if mat.shape[0] % n != 0:
        raise ValueError(f"matrix size {mat.shape[0]} not divisible into {n} blocks")
    l = mat.shape[0] // n
    return mat.reshape(n, l, n, l).transpose(0, 2, 1, 3), l
