"""Replay a traced simulation on real data and verify correctness.

:func:`execute_outer` / :func:`execute_matrix` run a strategy through the
event-driven simulator with task-id collection enabled, then perform every
allocated block task numerically, in trace order, attributing work to the
worker that was assigned it.  The report records coverage (every task
exactly once), the communication accounting of the run, and the maximum
absolute error against the NumPy reference.

This is the reproduction's stand-in for executing on a real heterogeneous
cluster — it drives the *same* scheduler code path the simulations measure
and proves the schedules compute the right answer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.strategies.base import Strategy
from repro.core.strategies.registry import make_strategy
from repro.execution.kernels import (
    _as_blocked_matrix,
    reference_matmul,
    reference_outer,
    split_into_blocks,
)
from repro.platform.platform import Platform
from repro.simulator.engine import simulate
from repro.simulator.results import SimulationResult
from repro.utils.rng import SeedLike

__all__ = ["ExecutionReport", "execute_outer", "execute_matrix"]


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of one numerical replay."""

    result: np.ndarray
    simulation: SimulationResult
    per_worker_tasks: np.ndarray
    max_abs_error: float
    tasks_executed: int

    @property
    def exact(self) -> bool:
        """True when the replay reproduced the reference bit-exactly."""
        return self.max_abs_error == 0.0


def _make_traced_strategy(strategy: "Strategy | str", kernel: str, n: int) -> Strategy:
    if isinstance(strategy, str):
        strategy = make_strategy(strategy, n, collect_ids=True)
    if strategy.kernel != kernel:
        raise ValueError(f"strategy {strategy.name!r} is a {strategy.kernel} strategy, expected {kernel}")
    if strategy.n != n:
        raise ValueError(f"strategy built for n={strategy.n}, data has n={n}")
    if not strategy.collect_ids:
        raise ValueError("execution replay requires a strategy built with collect_ids=True")
    return strategy


def execute_outer(
    a: np.ndarray,
    b: np.ndarray,
    n: int,
    platform: Platform,
    strategy: "Strategy | str" = "DynamicOuter",
    *,
    rng: SeedLike = None,
) -> ExecutionReport:
    """Compute ``a b^t`` by replaying a simulated schedule block-by-block.

    Parameters
    ----------
    a, b:
        Input vectors, each of length ``n * l`` for some block size ``l``.
    n:
        Number of blocks per vector.
    platform, strategy, rng:
        As for :func:`repro.simulator.simulate`; *strategy* may be a name
        (built with ``collect_ids=True``) or a pre-built traced strategy.
    """
    a_blocks = split_into_blocks(a, n)
    b_blocks = split_into_blocks(b, n)
    if a_blocks.shape != b_blocks.shape:
        raise ValueError("a and b must have the same length")
    strat = _make_traced_strategy(strategy, "outer", n)

    sim = simulate(strat, platform, rng=rng, collect_trace=True)
    l = a_blocks.shape[1]
    out = np.zeros((n * l, n * l), dtype=np.result_type(a_blocks, b_blocks))
    tiles = out.reshape(n, l, n, l).transpose(0, 2, 1, 3)
    touched = np.zeros(n * n, dtype=np.int64)
    per_worker = np.zeros(platform.p, dtype=np.int64)

    for rec in sim.trace:
        if rec.task_ids is None or rec.task_ids.size == 0:
            continue
        per_worker[rec.worker] += rec.task_ids.size
        for flat in rec.task_ids:
            i, j = divmod(int(flat), n)
            tiles[i, j] += np.outer(a_blocks[i], b_blocks[j])
            touched[flat] += 1

    if not np.all(touched == 1):
        raise AssertionError(
            f"schedule coverage broken: {np.count_nonzero(touched == 0)} missing, "
            f"{np.count_nonzero(touched > 1)} duplicated tasks"
        )
    err = float(np.max(np.abs(out - reference_outer(a, b))))
    return ExecutionReport(
        result=out,
        simulation=sim,
        per_worker_tasks=per_worker,
        max_abs_error=err,
        tasks_executed=int(touched.sum()),
    )


def execute_matrix(
    a: np.ndarray,
    b: np.ndarray,
    n: int,
    platform: Platform,
    strategy: "Strategy | str" = "DynamicMatrix",
    *,
    rng: SeedLike = None,
) -> ExecutionReport:
    """Compute ``A B`` by replaying a simulated schedule block-by-block.

    ``a`` and ``b`` are square matrices of size ``n * l``; every task
    ``(i, j, k)`` performs the update ``C[i,j] += A[i,k] @ B[k,j]`` exactly
    once, in trace order, so the accumulated result must equal ``A @ B`` up
    to floating-point associativity (the report's ``max_abs_error`` is
    checked against a tolerance by callers, not assumed zero).
    """
    a_tiles, l = _as_blocked_matrix(a, n)
    b_tiles, lb = _as_blocked_matrix(b, n)
    if lb != l or a.shape != b.shape:
        raise ValueError("A and B must have identical square shapes")
    strat = _make_traced_strategy(strategy, "matrix", n)

    sim = simulate(strat, platform, rng=rng, collect_trace=True)
    out = np.zeros((n * l, n * l), dtype=np.result_type(a, b))
    c_tiles = out.reshape(n, l, n, l).transpose(0, 2, 1, 3)
    touched = np.zeros(n**3, dtype=np.int64)
    per_worker = np.zeros(platform.p, dtype=np.int64)

    for rec in sim.trace:
        if rec.task_ids is None or rec.task_ids.size == 0:
            continue
        per_worker[rec.worker] += rec.task_ids.size
        for flat in rec.task_ids:
            flat = int(flat)
            ij, k = divmod(flat, n)
            i, j = divmod(ij, n)
            c_tiles[i, j] += a_tiles[i, k] @ b_tiles[k, j]
            touched[flat] += 1

    if not np.all(touched == 1):
        raise AssertionError(
            f"schedule coverage broken: {np.count_nonzero(touched == 0)} missing, "
            f"{np.count_nonzero(touched > 1)} duplicated tasks"
        )
    err = float(np.max(np.abs(out - reference_matmul(a, b))))
    return ExecutionReport(
        result=out,
        simulation=sim,
        per_worker_tasks=per_worker,
        max_abs_error=err,
        tasks_executed=int(touched.sum()),
    )
