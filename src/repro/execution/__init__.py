"""Execution replay: run simulated schedules on real NumPy blocks.

The paper evaluates its schedulers purely by simulated communication
counts.  This package closes the loop for the reproduction: it replays a
traced simulation on actual data — every allocated block task performs the
corresponding real outer-product / GEMM update — and verifies bit-level
correctness against the straightforward NumPy reference.  This proves the
schedules are semantically valid (every task computed exactly once, results
assemble to the true product), which is the property an actual runtime
(StarPU-style) would rely on.
"""

from repro.execution.kernels import (
    assemble_outer,
    block_gemm_update,
    block_outer,
    reference_matmul,
    reference_outer,
    split_into_blocks,
)
from repro.execution.live import LiveReport, run_matrix_live, run_outer_live
from repro.execution.replay import ExecutionReport, execute_matrix, execute_outer

__all__ = [
    "LiveReport",
    "run_outer_live",
    "run_matrix_live",
    "block_outer",
    "block_gemm_update",
    "reference_outer",
    "reference_matmul",
    "split_into_blocks",
    "assemble_outer",
    "ExecutionReport",
    "execute_outer",
    "execute_matrix",
]
