"""Live threaded runtime: the schedulers driving real concurrent kernels.

Everything else in this repository measures *simulated* time.  This module
runs a strategy as an actual shared-memory runtime system, StarPU-style in
miniature:

* the master is the strategy object behind a lock;
* each worker is an OS thread that requests an assignment, releases the
  lock, computes the assigned block tasks with NumPy (BLAS releases the
  GIL, so computation genuinely overlaps), and requests again;
* demand-driven load balancing emerges from real execution speed — no
  speed is ever configured;
* for matmul, each worker accumulates its own partial ``C`` and the master
  reduces the contributions at the end, exactly as the paper describes
  ("all C_{i,j} are sent back to the master that computes the final
  results by adding the different contributions").

This is the reproduction's answer to "slow for real kernels": the live
path is provided and verified for correctness, while the evaluation runs
on the discrete-event simulator like the paper's own.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.core.strategies.base import Strategy
from repro.core.strategies.registry import make_strategy
from repro.execution.kernels import reference_matmul, reference_outer, split_into_blocks
from repro.platform.platform import Platform
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["LiveReport", "run_outer_live", "run_matrix_live"]


@dataclass(frozen=True)
class LiveReport:
    """Outcome of one live threaded run."""

    result: np.ndarray
    per_worker_tasks: np.ndarray
    per_worker_blocks: np.ndarray
    wall_time: float
    n_workers: int
    strategy_name: str
    max_abs_error: float

    @property
    def total_tasks(self) -> int:
        return int(self.per_worker_tasks.sum())


def _resolve_strategy(strategy: Union[str, Strategy], kernel: str, n: int) -> Strategy:
    if isinstance(strategy, str):
        strategy = make_strategy(strategy, n, collect_ids=True)
    if strategy.kernel != kernel:
        raise ValueError(f"{strategy.name!r} is a {strategy.kernel} strategy, expected {kernel}")
    if strategy.n != n or not strategy.collect_ids:
        raise ValueError("live execution needs a size-matched strategy with collect_ids=True")
    return strategy


def run_outer_live(
    a: np.ndarray,
    b: np.ndarray,
    n: int,
    *,
    n_workers: int = 4,
    strategy: Union[str, Strategy] = "DynamicOuter2Phases",
    rng: SeedLike = None,
) -> LiveReport:
    """Compute ``a b^t`` with *n_workers* threads driven by *strategy*.

    Tiles are written exactly once (guaranteed by the strategies), so
    workers write the shared output without synchronization.
    """
    n_workers = check_positive_int("n_workers", n_workers)
    a_blocks = split_into_blocks(a, n)
    b_blocks = split_into_blocks(b, n)
    if a_blocks.shape != b_blocks.shape:
        raise ValueError("a and b must have the same length")
    l = a_blocks.shape[1]

    strat = _resolve_strategy(strategy, "outer", n)
    # The strategies are speed-agnostic; the platform only sizes the worker
    # state (auto-tuned beta uses p, which is what we want).
    strat.reset(Platform.homogeneous(n_workers), as_generator(rng))

    out = np.zeros((n * l, n * l), dtype=np.result_type(a_blocks, b_blocks))
    tiles = out.reshape(n, l, n, l).transpose(0, 2, 1, 3)
    tasks = np.zeros(n_workers, dtype=np.int64)
    blocks = np.zeros(n_workers, dtype=np.int64)
    master_lock = threading.Lock()
    errors: List[BaseException] = []

    def worker(wid: int) -> None:
        try:
            while True:
                with master_lock:
                    if strat.done:
                        return
                    assignment = strat.assign(wid, time.monotonic())
                blocks[wid] += assignment.blocks
                ids = assignment.task_ids
                if ids is None or ids.size == 0:
                    continue
                tasks[wid] += ids.size
                for flat in ids:
                    i, j = divmod(int(flat), n)
                    tiles[i, j] = np.outer(a_blocks[i], b_blocks[j])
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    start = time.perf_counter()
    threads = [threading.Thread(target=worker, args=(w,)) for w in range(n_workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]

    err = float(np.max(np.abs(out - reference_outer(a, b))))
    return LiveReport(
        result=out,
        per_worker_tasks=tasks,
        per_worker_blocks=blocks,
        wall_time=wall,
        n_workers=n_workers,
        strategy_name=strat.name,
        max_abs_error=err,
    )


def run_matrix_live(
    a: np.ndarray,
    b: np.ndarray,
    n: int,
    *,
    n_workers: int = 4,
    strategy: Union[str, Strategy] = "DynamicMatrix2Phases",
    rng: SeedLike = None,
) -> LiveReport:
    """Compute ``A B`` with *n_workers* threads driven by *strategy*.

    Each worker accumulates a private partial ``C`` (tasks with the same
    ``(i, j)`` but different ``k`` may land on different workers); the
    master sums the contributions at the end, as in the paper's model.
    """
    n_workers = check_positive_int("n_workers", n_workers)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("A and B must be identical square matrices")
    if a.shape[0] % n != 0:
        raise ValueError(f"size {a.shape[0]} not divisible into {n} tiles")
    l = a.shape[0] // n
    a_tiles = a.reshape(n, l, n, l).transpose(0, 2, 1, 3)
    b_tiles = b.reshape(n, l, n, l).transpose(0, 2, 1, 3)

    strat = _resolve_strategy(strategy, "matrix", n)
    strat.reset(Platform.homogeneous(n_workers), as_generator(rng))

    partials = [np.zeros((n * l, n * l)) for _ in range(n_workers)]
    tasks = np.zeros(n_workers, dtype=np.int64)
    blocks = np.zeros(n_workers, dtype=np.int64)
    master_lock = threading.Lock()
    errors: List[BaseException] = []

    def worker(wid: int) -> None:
        try:
            c_tiles = partials[wid].reshape(n, l, n, l).transpose(0, 2, 1, 3)
            while True:
                with master_lock:
                    if strat.done:
                        return
                    assignment = strat.assign(wid, time.monotonic())
                blocks[wid] += assignment.blocks
                ids = assignment.task_ids
                if ids is None or ids.size == 0:
                    continue
                tasks[wid] += ids.size
                for flat in ids:
                    ij, k = divmod(int(flat), n)
                    i, j = divmod(ij, n)
                    c_tiles[i, j] += a_tiles[i, k] @ b_tiles[k, j]
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    start = time.perf_counter()
    threads = [threading.Thread(target=worker, args=(w,)) for w in range(n_workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]

    # Master-side reduction of the workers' partial results.
    out = np.zeros((n * l, n * l))
    for partial in partials:
        out += partial
    wall = time.perf_counter() - start

    err = float(np.max(np.abs(out - reference_matmul(a, b))))
    return LiveReport(
        result=out,
        per_worker_tasks=tasks,
        per_worker_blocks=blocks,
        wall_time=wall,
        n_workers=n_workers,
        strategy_name=strat.name,
        max_abs_error=err,
    )
