"""Speed distributions and dynamic speed models from the paper's evaluation.

Distributions (how base speeds are drawn):

* ``uniform_speeds(p, low, high)`` — the default setting of Figures 1, 4, 5,
  9, 10: speeds uniform in ``[10, 100]``;
* ``heterogeneity_speeds(p, h)`` — Figure 7: speeds uniform in
  ``[100 - h, 100 + h]`` for a heterogeneity level ``h`` in ``[0, 100)``;
* ``set_speeds(p, values)`` — Figure 8's ``set.3`` / ``set.5``: each worker
  draws its speed uniformly from a small set of speed classes.

Dynamic models (how speeds evolve *during* a run):

* :class:`StaticSpeedModel` — speeds never change (all figures except 8);
* :class:`DynamicSpeedModel` — Figure 8's ``dyn.5`` / ``dyn.20``: after each
  task a worker's speed changes by a uniformly random relative amount of up
  to ``jitter`` (5 % or 20 %).

:func:`make_scenario` builds the six named Figure-8 scenarios.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.platform.platform import Platform
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_nonnegative_int, check_positive, check_positive_int

__all__ = [
    "uniform_speeds",
    "heterogeneity_speeds",
    "set_speeds",
    "SpeedModel",
    "StaticSpeedModel",
    "DynamicSpeedModel",
    "make_scenario",
    "SCENARIO_NAMES",
]

# Floor below which a dynamic speed is clamped; the multiplicative random
# walk of dyn.* has a slight downward log-drift, and a speed of exactly zero
# would deadlock the demand-driven loop.
_SPEED_FLOOR = 1e-9


def uniform_speeds(p: int, low: float = 10.0, high: float = 100.0, *, rng: SeedLike = None) -> np.ndarray:
    """Draw *p* speeds uniformly in ``[low, high]`` (paper default [10, 100])."""
    p = check_positive_int("p", p)
    low = check_positive("low", low)
    high = check_positive("high", high)
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    return as_generator(rng).uniform(low, high, size=p)


def heterogeneity_speeds(p: int, h: float, *, rng: SeedLike = None) -> np.ndarray:
    """Figure 7 distribution: speeds uniform in ``[100 - h, 100 + h]``.

    ``h = 0`` yields a perfectly homogeneous platform; ``h`` close to 100
    yields a large ratio between the slowest and fastest workers.
    """
    p = check_positive_int("p", p)
    h = float(h)
    if not 0.0 <= h < 100.0:
        raise ValueError(f"heterogeneity h must lie in [0, 100), got {h}")
    if h == 0.0:
        return np.full(p, 100.0)
    return as_generator(rng).uniform(100.0 - h, 100.0 + h, size=p)


def set_speeds(p: int, values: Sequence[float], *, rng: SeedLike = None) -> np.ndarray:
    """Each worker draws its speed uniformly from the class set *values*."""
    p = check_positive_int("p", p)
    vals = np.asarray(values, dtype=np.float64)
    if vals.ndim != 1 or vals.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    if np.any(vals <= 0) or not np.all(np.isfinite(vals)):
        raise ValueError("speed classes must be positive and finite")
    return as_generator(rng).choice(vals, size=p)


class SpeedModel:
    """How long a batch of tasks takes on a worker, given platform speeds.

    The engine calls :meth:`duration` once per assignment.  Implementations
    must be consistent with demand-driven load balancing: duration is the
    time to process ``n_tasks`` block tasks at the worker's current speed.
    """

    def reset(self, platform: Platform, rng: np.random.Generator) -> None:
        """Bind to a platform at the start of a simulation run."""
        raise NotImplementedError

    def duration(self, worker: int, n_tasks: int) -> float:
        """Time for *worker* to process *n_tasks* tasks (0 tasks -> 0 time)."""
        raise NotImplementedError

    def current_speed(self, worker: int) -> float:
        """The worker's instantaneous speed (for introspection/tests)."""
        raise NotImplementedError


class StaticSpeedModel(SpeedModel):
    """Constant speeds: ``duration = n_tasks / s_k``."""

    def __init__(self) -> None:
        self._speeds: np.ndarray | None = None

    def reset(self, platform: Platform, rng: np.random.Generator) -> None:
        self._speeds = platform.speeds

    def duration(self, worker: int, n_tasks: int) -> float:
        if self._speeds is None:
            raise RuntimeError("speed model used before reset()")
        n_tasks = check_nonnegative_int("n_tasks", n_tasks)
        return n_tasks / float(self._speeds[worker])

    def current_speed(self, worker: int) -> float:
        if self._speeds is None:
            raise RuntimeError("speed model used before reset()")
        return float(self._speeds[worker])


class DynamicSpeedModel(SpeedModel):
    """Per-task multiplicative speed perturbation (Figure 8, dyn.5 / dyn.20).

    After computing each task, a worker's speed is multiplied by
    ``1 + u`` with ``u`` uniform in ``[-jitter, +jitter]``.  The duration of
    an assignment of ``m`` tasks is the exact sum ``sum_t 1 / s_t`` over the
    evolving per-task speeds, computed vectorized with a cumulative product.
    """

    def __init__(self, jitter: float) -> None:
        jitter = float(jitter)
        if not 0.0 < jitter < 1.0:
            raise ValueError(f"jitter must lie in (0, 1), got {jitter}")
        self.jitter = jitter
        self._speeds: np.ndarray | None = None
        self._rng: np.random.Generator | None = None

    def reset(self, platform: Platform, rng: np.random.Generator) -> None:
        self._speeds = platform.speeds.copy()
        self._rng = rng

    def duration(self, worker: int, n_tasks: int) -> float:
        if self._speeds is None or self._rng is None:
            raise RuntimeError("speed model used before reset()")
        n_tasks = check_nonnegative_int("n_tasks", n_tasks)
        if n_tasks == 0:
            return 0.0
        s0 = self._speeds[worker]
        # Speed while computing task t is s0 * prod(factors[:t]); the change
        # happens *after* each task, so the first task runs at s0.
        factors = 1.0 + self._rng.uniform(-self.jitter, self.jitter, size=n_tasks)
        cum = np.cumprod(factors)
        per_task_speeds = np.empty(n_tasks)
        per_task_speeds[0] = s0
        if n_tasks > 1:
            per_task_speeds[1:] = s0 * cum[:-1]
        np.maximum(per_task_speeds, _SPEED_FLOOR, out=per_task_speeds)
        self._speeds[worker] = max(s0 * cum[-1], _SPEED_FLOOR)
        return float(np.sum(1.0 / per_task_speeds))

    def current_speed(self, worker: int) -> float:
        if self._speeds is None:
            raise RuntimeError("speed model used before reset()")
        return float(self._speeds[worker])


# -- named Figure-8 scenarios ---------------------------------------------

_ScenarioFactory = Callable[[int, np.random.Generator], Tuple[np.ndarray, SpeedModel]]


def _scenarios() -> Dict[str, _ScenarioFactory]:
    return {
        "unif.1": lambda p, rng: (uniform_speeds(p, 80, 120, rng=rng), StaticSpeedModel()),
        "unif.2": lambda p, rng: (uniform_speeds(p, 50, 150, rng=rng), StaticSpeedModel()),
        "set.3": lambda p, rng: (set_speeds(p, (80, 100, 150), rng=rng), StaticSpeedModel()),
        "set.5": lambda p, rng: (set_speeds(p, (40, 80, 100, 150, 200), rng=rng), StaticSpeedModel()),
        "dyn.5": lambda p, rng: (uniform_speeds(p, 80, 120, rng=rng), DynamicSpeedModel(0.05)),
        "dyn.20": lambda p, rng: (uniform_speeds(p, 80, 120, rng=rng), DynamicSpeedModel(0.20)),
    }


SCENARIO_NAMES: Tuple[str, ...] = tuple(_scenarios().keys())


def make_scenario(name: str, p: int, *, rng: SeedLike = None) -> Tuple[Platform, SpeedModel]:
    """Instantiate one of the six named Figure-8 heterogeneity scenarios.

    Returns a ``(platform, speed_model)`` pair ready to pass to
    :func:`repro.simulator.simulate`.
    """
    factories = _scenarios()
    if name not in factories:
        raise ValueError(f"unknown scenario {name!r}; choose from {sorted(factories)}")
    speeds, model = factories[name](check_positive_int("p", p), as_generator(rng))
    return Platform(speeds), model
