"""Heterogeneous master–worker platform model.

A :class:`~repro.platform.platform.Platform` is a set of workers with
strictly positive speeds (tasks per unit time); the master is implicit (it
only ships blocks and never computes).  Speed *distributions* reproduce the
paper's experimental settings (uniform ranges, discrete speed classes, the
heterogeneity parameter ``h`` of Figure 7) and speed *models* add the
dynamic per-task perturbations of the ``dyn.5`` / ``dyn.20`` scenarios of
Figure 8.
"""

from repro.platform.platform import Platform, Processor
from repro.platform.speeds import (
    SCENARIO_NAMES,
    DynamicSpeedModel,
    SpeedModel,
    StaticSpeedModel,
    heterogeneity_speeds,
    make_scenario,
    set_speeds,
    uniform_speeds,
)

__all__ = [
    "Platform",
    "Processor",
    "SpeedModel",
    "StaticSpeedModel",
    "DynamicSpeedModel",
    "uniform_speeds",
    "heterogeneity_speeds",
    "set_speeds",
    "make_scenario",
    "SCENARIO_NAMES",
]
