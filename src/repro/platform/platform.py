"""Processors and platforms.

The paper's model (Section 3.1): ``p`` workers, worker ``P_k`` performs
``s_k`` block tasks per time unit; its *relative speed* is
``rs_k = s_k / sum_i s_i``.  The randomized strategies are agnostic to the
speeds, but being demand-driven, a twice-faster worker requests work twice
as often — the simulator realizes exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

import numpy as np

from repro.utils.validation import check_speeds

__all__ = ["Processor", "Platform"]


@dataclass(frozen=True)
class Processor:
    """One worker: an id and a base speed (block tasks per time unit)."""

    pid: int
    speed: float

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise ValueError(f"pid must be non-negative, got {self.pid}")
        if not np.isfinite(self.speed) or self.speed <= 0:
            raise ValueError(f"speed must be positive and finite, got {self.speed}")


class Platform:
    """An immutable collection of workers with derived speed statistics."""

    __slots__ = ("_speeds", "_total", "_relative")

    def __init__(self, speeds: Union[Sequence[float], np.ndarray]) -> None:
        self._speeds = check_speeds(speeds)
        self._speeds.flags.writeable = False
        self._total = float(self._speeds.sum())
        rel = self._speeds / self._total
        rel.flags.writeable = False
        self._relative = rel

    # -- constructors ------------------------------------------------------

    @classmethod
    def homogeneous(cls, p: int, speed: float = 1.0) -> "Platform":
        """A platform of *p* identical workers."""
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        return cls(np.full(p, float(speed)))

    # -- accessors ---------------------------------------------------------

    @property
    def p(self) -> int:
        """Number of workers."""
        return int(self._speeds.size)

    @property
    def speeds(self) -> np.ndarray:
        """Base speeds ``s_k`` (read-only array)."""
        return self._speeds

    @property
    def total_speed(self) -> float:
        """Aggregate speed ``sum_i s_i``."""
        return self._total

    @property
    def relative_speeds(self) -> np.ndarray:
        """Relative speeds ``rs_k = s_k / sum_i s_i`` (read-only array)."""
        return self._relative

    def processor(self, pid: int) -> Processor:
        return Processor(pid, float(self._speeds[pid]))

    def __len__(self) -> int:
        return self.p

    def __iter__(self) -> Iterator[Processor]:
        return (self.processor(k) for k in range(self.p))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Platform(p={self.p}, total_speed={self._total:.4g})"
