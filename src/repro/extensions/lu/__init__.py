"""Tiled LU factorization (no pivoting) with dynamic data-aware scheduling.

Completes the dense-factorization trio on the generic DAG engine
(:mod:`repro.extensions.dagsched`).  Right-looking tiled LU of an
``n x n``-tile matrix (assumed to admit an LU factorization without
pivoting, e.g. diagonally dominant)::

    GETRF(k)      : A[k,k]  = L[k,k] U[k,k]           (in place)
    TRSM_U(k,j)   : U[k,j]  = inv(L[k,k]) @ A[k,j]    (j > k)
    TRSM_L(i,k)   : L[i,k]  = A[i,k] @ inv(U[k,k])    (i > k)
    GEMM(i,j,k)   : A[i,j] -= L[i,k] @ U[k,j]         (i, j > k)

Pivot-free LU is numerically safe only for restricted matrix classes; the
replay helper :func:`~repro.extensions.lu.numerics.random_dd` generates
diagonally dominant inputs for which it is well-conditioned.
"""

from repro.extensions.lu.dag import LuDag, LuTask, LuTaskType, lu_task_counts
from repro.extensions.lu.numerics import random_dd, replay_lu
from repro.extensions.lu.scheduler import (
    LocalityScheduler,
    LuResult,
    RandomScheduler,
    simulate_lu,
)

__all__ = [
    "LuDag",
    "LuTask",
    "LuTaskType",
    "lu_task_counts",
    "simulate_lu",
    "RandomScheduler",
    "LocalityScheduler",
    "LuResult",
    "replay_lu",
    "random_dd",
]
