"""The tiled-LU (no pivoting) task DAG.

Dependencies of the right-looking variant:

* ``GETRF(k)`` waits for ``GEMM(k, k, k-1)`` when ``k >= 1``;
* ``TRSM_U(k, j)`` waits for ``GETRF(k)`` and ``GEMM(k, j, k-1)``;
* ``TRSM_L(i, k)`` waits for ``GETRF(k)`` and ``GEMM(i, k, k-1)``;
* ``GEMM(i, j, k)`` waits for ``TRSM_L(i, k)``, ``TRSM_U(k, j)`` and
  ``GEMM(i, j, k-1)``.

Counts for ``n`` tiles: ``n`` GETRF, ``n(n-1)/2`` each TRSM flavour and
``n(n-1)(2n-1)/6``... no — GEMM(i, j, k) ranges over ``i, j > k``:
``sum_k (n-1-k)^2 = (n-1)n(2n-1)/6``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.utils.validation import check_positive_int

__all__ = ["LuTaskType", "LuTask", "Tile", "LuDag", "lu_task_counts"]

Tile = Tuple[int, int]


class LuTaskType(enum.Enum):
    """The tiled-LU kernels (LAPACK naming; TRSM split by triangle)."""

    GETRF = "getrf"
    TRSM_U = "trsm_u"  # row update: U[k, j]
    TRSM_L = "trsm_l"  # column update: L[i, k]
    GEMM = "gemm"


_WORK = {
    LuTaskType.GETRF: 2.0 / 3.0,
    LuTaskType.TRSM_U: 1.0,
    LuTaskType.TRSM_L: 1.0,
    LuTaskType.GEMM: 2.0,
}


@dataclass(frozen=True)
class LuTask:
    """One tiled-LU task: kernel kind, tile indices, data footprint."""

    kind: LuTaskType
    i: int
    j: int
    k: int
    reads: Tuple[Tile, ...]
    writes: Tile
    work: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}({self.i},{self.j},{self.k})"


def lu_task_counts(n: int) -> Dict[LuTaskType, int]:
    """Closed-form task counts for an ``n``-tile factorization."""
    n = check_positive_int("n", n)
    return {
        LuTaskType.GETRF: n,
        LuTaskType.TRSM_U: n * (n - 1) // 2,
        LuTaskType.TRSM_L: n * (n - 1) // 2,
        LuTaskType.GEMM: (n - 1) * n * (2 * n - 1) // 6,
    }


class LuDag:
    """Tasks, dependency edges and priorities for ``n`` tiles."""

    def __init__(self, n: int) -> None:
        self.n = check_positive_int("n", n)
        self.tasks: List[LuTask] = []
        self._index: Dict[Tuple[LuTaskType, int, int, int], int] = {}
        self._build_tasks()
        self.successors: List[List[int]] = [[] for _ in self.tasks]
        self.n_deps: List[int] = [0] * len(self.tasks)
        self._build_edges()
        self.priority = self._upward_ranks()

    def _add(self, kind: LuTaskType, i: int, j: int, k: int, reads: Iterable[Tile], writes: Tile) -> None:
        self._index[(kind, i, j, k)] = len(self.tasks)
        self.tasks.append(
            LuTask(kind=kind, i=i, j=j, k=k, reads=tuple(reads), writes=writes, work=_WORK[kind])
        )

    def _build_tasks(self) -> None:
        n = self.n
        for k in range(n):
            self._add(LuTaskType.GETRF, k, k, k, [(k, k)], (k, k))
            for j in range(k + 1, n):
                self._add(LuTaskType.TRSM_U, k, j, k, [(k, k), (k, j)], (k, j))
            for i in range(k + 1, n):
                self._add(LuTaskType.TRSM_L, i, k, k, [(k, k), (i, k)], (i, k))
                for j in range(k + 1, n):
                    self._add(LuTaskType.GEMM, i, j, k, [(i, k), (k, j), (i, j)], (i, j))

    def _edge(self, src_key: Tuple[LuTaskType, int, int, int], dst_key: Tuple[LuTaskType, int, int, int]) -> None:
        src = self._index[src_key]
        dst = self._index[dst_key]
        self.successors[src].append(dst)
        self.n_deps[dst] += 1

    def _build_edges(self) -> None:
        n = self.n
        T = LuTaskType
        for k in range(n):
            if k >= 1:
                self._edge((T.GEMM, k, k, k - 1), (T.GETRF, k, k, k))
            for j in range(k + 1, n):
                self._edge((T.GETRF, k, k, k), (T.TRSM_U, k, j, k))
                if k >= 1:
                    self._edge((T.GEMM, k, j, k - 1), (T.TRSM_U, k, j, k))
            for i in range(k + 1, n):
                self._edge((T.GETRF, k, k, k), (T.TRSM_L, i, k, k))
                if k >= 1:
                    self._edge((T.GEMM, i, k, k - 1), (T.TRSM_L, i, k, k))
                for j in range(k + 1, n):
                    self._edge((T.TRSM_L, i, k, k), (T.GEMM, i, j, k))
                    self._edge((T.TRSM_U, k, j, k), (T.GEMM, i, j, k))
                    if k >= 1:
                        self._edge((T.GEMM, i, j, k - 1), (T.GEMM, i, j, k))

    def _upward_ranks(self) -> List[float]:
        order = self._topological_order()
        rank = [0.0] * len(self.tasks)
        for t in reversed(order):
            best = 0.0
            for s in self.successors[t]:
                best = max(best, rank[s])
            rank[t] = self.tasks[t].work + best
        return rank

    def _topological_order(self) -> List[int]:
        indeg = list(self.n_deps)
        stack = [t for t, d in enumerate(indeg) if d == 0]
        order: List[int] = []
        while stack:
            t = stack.pop()
            order.append(t)
            for s in self.successors[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        if len(order) != len(self.tasks):  # pragma: no cover - structural guard
            raise RuntimeError("LU DAG contains a cycle")
        return order

    def __len__(self) -> int:
        return len(self.tasks)

    def task_id(self, kind: LuTaskType, i: int, j: int, k: int) -> int:
        return self._index[(kind, i, j, k)]

    def initial_ready(self) -> List[int]:
        return [t for t, d in enumerate(self.n_deps) if d == 0]
