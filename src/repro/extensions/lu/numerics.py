"""Numerical replay of a scheduled tiled LU factorization.

Executes the schedule in assignment order on a diagonally dominant matrix
and verifies ``L U = A`` with unit-diagonal ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Any, Tuple

import numpy as np
from scipy import linalg as sla

from repro.extensions.lu.dag import LuDag, LuTaskType
from repro.extensions.lu.scheduler import LuResult, simulate_lu
from repro.platform.platform import Platform
from repro.utils.rng import SeedLike, as_generator

__all__ = ["LuReplay", "replay_lu", "random_dd"]


@dataclass(frozen=True)
class LuReplay:
    """Outcome of one numerical LU replay."""

    l_factor: np.ndarray
    u_factor: np.ndarray
    simulation: LuResult
    max_abs_error: float  # || L U - A ||_max / || A ||_max


def random_dd(size: int, *, rng: SeedLike = None) -> np.ndarray:
    """A random diagonally dominant matrix (safe for pivot-free LU)."""
    generator = as_generator(rng)
    m = generator.normal(size=(size, size))
    return m + size * np.eye(size)


def replay_lu(
    a: np.ndarray,
    n: int,
    platform: Platform,
    scheduler: Any = None,
    *,
    rng: SeedLike = None,
) -> LuReplay:
    """Factorize *a* via a simulated tiled-LU schedule and verify it."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected a square matrix, got {a.shape}")
    if a.shape[0] % n != 0:
        raise ValueError(f"size {a.shape[0]} not divisible into {n} tiles")
    l = a.shape[0] // n

    result = simulate_lu(n, platform, scheduler, rng=rng)
    dag = LuDag(n)
    work = a.copy()

    def tile(i: int, j: int) -> np.ndarray:
        return work[i * l : (i + 1) * l, j * l : (j + 1) * l]

    for _start, _worker, tid in result.schedule:
        task = dag.tasks[tid]
        if task.kind is LuTaskType.GETRF:
            # In-place pivot-free Doolittle LU of the diagonal tile; safe
            # because elimination preserves diagonal dominance.
            t = tile(task.k, task.k)
            lo, up = _doolittle(t)
            t[:] = np.tril(lo, -1) + up
        elif task.kind is LuTaskType.TRSM_U:
            lkk = np.tril(tile(task.k, task.k), -1) + np.eye(l)
            tile(task.k, task.j)[:] = sla.solve_triangular(lkk, tile(task.k, task.j), lower=True, unit_diagonal=True)
        elif task.kind is LuTaskType.TRSM_L:
            ukk = np.triu(tile(task.k, task.k))
            # L[i,k] = A[i,k] inv(U[k,k])  <=>  U^T x^T = A^T.
            tile(task.i, task.k)[:] = sla.solve_triangular(ukk.T, tile(task.i, task.k).T, lower=True).T
        else:  # GEMM
            tile(task.i, task.j)[:] -= tile(task.i, task.k) @ tile(task.k, task.j)

    l_factor = np.tril(work, -1) + np.eye(n * l)
    u_factor = np.triu(work)
    scale = float(np.max(np.abs(a))) or 1.0
    err = float(np.max(np.abs(l_factor @ u_factor - a))) / scale
    return LuReplay(l_factor=l_factor, u_factor=u_factor, simulation=result, max_abs_error=err)


def _doolittle(t: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Pivot-free Doolittle LU of a small tile (fallback path)."""
    m = t.shape[0]
    lo = np.eye(m)
    up = t.copy()
    for c in range(m - 1):
        if up[c, c] == 0:
            raise np.linalg.LinAlgError("zero pivot in pivot-free LU")
        factors = up[c + 1 :, c] / up[c, c]
        lo[c + 1 :, c] = factors
        up[c + 1 :] -= np.outer(factors, up[c])
    return lo, np.triu(up)
