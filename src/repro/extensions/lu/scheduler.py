"""LU front-end over the generic DAG engine."""

from __future__ import annotations

from typing import Any

from repro.extensions.dagsched.engine import (
    DagSchedulingResult,
    LocalityScheduler as _LocalityScheduler,
    RandomScheduler as _RandomScheduler,
    simulate_dag,
)
from repro.extensions.lu.dag import LuDag
from repro.platform.platform import Platform
from repro.utils.rng import SeedLike

__all__ = ["RandomScheduler", "LocalityScheduler", "LuResult", "simulate_lu"]

LuResult = DagSchedulingResult


class RandomScheduler(_RandomScheduler):
    """Uniformly random ready-task selection."""

    name = "RandomLU"


class LocalityScheduler(_LocalityScheduler):
    """Fewest-missing-tiles selection with critical-path tie-break."""

    name = "LocalityLU"


def simulate_lu(
    n: int,
    platform: Platform,
    scheduler: Any = None,
    *,
    rng: SeedLike = None,
) -> DagSchedulingResult:
    """Simulate a tiled LU factorization (no pivoting) of ``n x n`` tiles."""
    policy = scheduler if scheduler is not None else LocalityScheduler()
    return simulate_dag(LuDag(n), platform, policy, rng=rng)
