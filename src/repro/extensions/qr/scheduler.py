"""QR front-end over the generic DAG engine."""

from __future__ import annotations

from typing import Any

from repro.extensions.dagsched.engine import (
    DagSchedulingResult,
    LocalityScheduler as _LocalityScheduler,
    RandomScheduler as _RandomScheduler,
    simulate_dag,
)
from repro.extensions.qr.dag import QrDag
from repro.platform.platform import Platform
from repro.utils.rng import SeedLike

__all__ = ["RandomScheduler", "LocalityScheduler", "QrResult", "simulate_qr"]

QrResult = DagSchedulingResult


class RandomScheduler(_RandomScheduler):
    """Uniformly random ready-task selection."""

    name = "RandomQR"


class LocalityScheduler(_LocalityScheduler):
    """Fewest-missing-tiles selection with critical-path tie-break."""

    name = "LocalityQR"


def simulate_qr(
    n: int,
    platform: Platform,
    scheduler: Any = None,
    *,
    rng: SeedLike = None,
) -> DagSchedulingResult:
    """Simulate a flat-tree tiled QR factorization of ``n x n`` tiles."""
    policy = scheduler if scheduler is not None else LocalityScheduler()
    return simulate_dag(QrDag(n), platform, policy, rng=rng)
