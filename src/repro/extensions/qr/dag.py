"""The flat-tree tiled-QR task DAG.

Dependencies (flat reduction tree, sequential panel chain):

* ``GEQRT(k)`` waits for ``TSMQR(k, k-1, k)`` when ``k >= 1`` (the last
  update of tile ``(k, k)`` by the previous panel);
* ``UNMQR(k, j)`` waits for ``GEQRT(k)`` and ``TSMQR(k, k-1, j)``;
* ``TSQRT(i, k)`` waits for ``GEQRT(k)`` when ``i = k+1``, else
  ``TSQRT(i-1, k)`` (the R tile chains down the panel), plus
  ``TSMQR(i, k-1, k)``;
* ``TSMQR(i, k, j)`` waits for ``TSQRT(i, k)``; for ``UNMQR(k, j)`` when
  ``i = k+1``, else ``TSMQR(i-1, k, j)``; plus ``TSMQR(i, k-1, j)``.

Task counts for ``n`` tiles: ``n`` GEQRT, ``n(n-1)/2`` each of UNMQR and
TSQRT, and ``(n-1)n(2n-1)/6`` TSMQR.

Work weights are the classical tile-flop ratios (GEQRT 4/3, UNMQR 2,
TSQRT 2, TSMQR 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.utils.validation import check_positive_int

__all__ = ["QrTaskType", "QrTask", "Tile", "QrDag", "qr_task_counts"]

Tile = Tuple[int, int]


class QrTaskType(enum.Enum):
    """The four tiled-QR kernels (LAPACK naming)."""

    GEQRT = "geqrt"
    UNMQR = "unmqr"
    TSQRT = "tsqrt"
    TSMQR = "tsmqr"


_WORK = {
    QrTaskType.GEQRT: 4.0 / 3.0,
    QrTaskType.UNMQR: 2.0,
    QrTaskType.TSQRT: 2.0,
    QrTaskType.TSMQR: 4.0,
}


@dataclass(frozen=True)
class QrTask:
    """One block task; TSQRT/TSMQR carry a second written tile."""

    kind: QrTaskType
    i: int
    j: int
    k: int
    reads: Tuple[Tile, ...]
    writes: Tile
    extra_writes: Tuple[Tile, ...]
    work: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}({self.i},{self.j},{self.k})"


def qr_task_counts(n: int) -> Dict[QrTaskType, int]:
    """Closed-form task counts for an ``n``-tile factorization."""
    n = check_positive_int("n", n)
    return {
        QrTaskType.GEQRT: n,
        QrTaskType.UNMQR: n * (n - 1) // 2,
        QrTaskType.TSQRT: n * (n - 1) // 2,
        QrTaskType.TSMQR: (n - 1) * n * (2 * n - 1) // 6,
    }


class QrDag:
    """Tasks, dependency edges and priorities for ``n`` tiles."""

    def __init__(self, n: int) -> None:
        self.n = check_positive_int("n", n)
        self.tasks: List[QrTask] = []
        self._index: Dict[Tuple[QrTaskType, int, int, int], int] = {}
        self._build_tasks()
        self.successors: List[List[int]] = [[] for _ in self.tasks]
        self.n_deps: List[int] = [0] * len(self.tasks)
        self._build_edges()
        self.priority = self._upward_ranks()

    # -- construction ------------------------------------------------------

    def _add(self, kind: QrTaskType, i: int, j: int, k: int, reads: Iterable[Tile], writes: Tile, extra: Iterable[Tile] = ()) -> None:
        self._index[(kind, i, j, k)] = len(self.tasks)
        self.tasks.append(
            QrTask(
                kind=kind,
                i=i,
                j=j,
                k=k,
                reads=tuple(reads),
                writes=writes,
                extra_writes=tuple(extra),
                work=_WORK[kind],
            )
        )

    def _build_tasks(self) -> None:
        n = self.n
        for k in range(n):
            self._add(QrTaskType.GEQRT, k, k, k, [(k, k)], (k, k))
            for j in range(k + 1, n):
                self._add(QrTaskType.UNMQR, k, j, k, [(k, k), (k, j)], (k, j))
            for i in range(k + 1, n):
                self._add(QrTaskType.TSQRT, i, k, k, [(k, k), (i, k)], (i, k), [(k, k)])
                for j in range(k + 1, n):
                    self._add(
                        QrTaskType.TSMQR,
                        i,
                        j,
                        k,
                        [(i, k), (k, j), (i, j)],
                        (i, j),
                        [(k, j)],
                    )

    def _edge(self, src_key: Tuple[QrTaskType, int, int, int], dst_key: Tuple[QrTaskType, int, int, int]) -> None:
        src = self._index[src_key]
        dst = self._index[dst_key]
        self.successors[src].append(dst)
        self.n_deps[dst] += 1

    def _build_edges(self) -> None:
        n = self.n
        T = QrTaskType
        for k in range(n):
            if k >= 1:
                self._edge((T.TSMQR, k, k, k - 1), (T.GEQRT, k, k, k))
            for j in range(k + 1, n):
                self._edge((T.GEQRT, k, k, k), (T.UNMQR, k, j, k))
                if k >= 1:
                    self._edge((T.TSMQR, k, j, k - 1), (T.UNMQR, k, j, k))
            for i in range(k + 1, n):
                if i == k + 1:
                    self._edge((T.GEQRT, k, k, k), (T.TSQRT, i, k, k))
                else:
                    self._edge((T.TSQRT, i - 1, k, k), (T.TSQRT, i, k, k))
                if k >= 1:
                    self._edge((T.TSMQR, i, k, k - 1), (T.TSQRT, i, k, k))
                for j in range(k + 1, n):
                    self._edge((T.TSQRT, i, k, k), (T.TSMQR, i, j, k))
                    if i == k + 1:
                        self._edge((T.UNMQR, k, j, k), (T.TSMQR, i, j, k))
                    else:
                        self._edge((T.TSMQR, i - 1, j, k), (T.TSMQR, i, j, k))
                    if k >= 1:
                        self._edge((T.TSMQR, i, j, k - 1), (T.TSMQR, i, j, k))

    def _upward_ranks(self) -> List[float]:
        order = self._topological_order()
        rank = [0.0] * len(self.tasks)
        for t in reversed(order):
            best = 0.0
            for s in self.successors[t]:
                best = max(best, rank[s])
            rank[t] = self.tasks[t].work + best
        return rank

    def _topological_order(self) -> List[int]:
        indeg = list(self.n_deps)
        stack = [t for t, d in enumerate(indeg) if d == 0]
        order: List[int] = []
        while stack:
            t = stack.pop()
            order.append(t)
            for s in self.successors[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        if len(order) != len(self.tasks):  # pragma: no cover - structural guard
            raise RuntimeError("QR DAG contains a cycle")
        return order

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def task_id(self, kind: QrTaskType, i: int, j: int, k: int) -> int:
        return self._index[(kind, i, j, k)]

    def initial_ready(self) -> List[int]:
        return [t for t, d in enumerate(self.n_deps) if d == 0]
