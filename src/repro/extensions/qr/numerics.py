"""Numerical replay of a scheduled tiled QR factorization.

Executes the simulated schedule in assignment order with explicit
orthogonal factors per tile kernel:

* ``GEQRT(k)``: full QR of the diagonal tile; the ``l x l`` Q is kept.
* ``UNMQR(k, j)``: ``A[k,j] <- Q_k^T A[k,j]``.
* ``TSQRT(i, k)``: full QR of the stacked ``[R[k,k]; A[i,k]]``; the
  ``2l x 2l`` Q is kept, ``R[k,k]`` is overwritten with the new R and
  ``A[i,k]`` is annihilated.
* ``TSMQR(i, k, j)``: apply the stacked Q to ``[A[k,j]; A[i,j]]``.

Verification does not track the accumulated Q explicitly; instead it uses
the two invariants a correct QR must satisfy: the result is (block) upper
triangular, and ``R^T R = A^T A`` (Q orthogonal drops out).  The replay
also compares ``|R|`` with ``|numpy.linalg.qr(A).R|`` — equal up to the
per-row sign freedom of Householder QR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

import numpy as np

from repro.extensions.qr.dag import QrDag, QrTaskType
from repro.extensions.qr.scheduler import QrResult, simulate_qr
from repro.platform.platform import Platform
from repro.utils.rng import SeedLike

__all__ = ["QrReplay", "replay_qr"]


@dataclass(frozen=True)
class QrReplay:
    """Outcome of one numerical QR replay."""

    r_factor: np.ndarray
    simulation: QrResult
    gram_error: float  # || R^T R - A^T A ||_max / || A^T A ||_max
    triangularity_error: float  # largest |entry| below the diagonal
    r_match_error: float  # || |R| - |R_numpy| ||_max


def replay_qr(
    a: np.ndarray,
    n: int,
    platform: Platform,
    scheduler: Any = None,
    *,
    rng: SeedLike = None,
) -> QrReplay:
    """Factorize *a* via a simulated tiled-QR schedule and verify it."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected a square matrix, got {a.shape}")
    if a.shape[0] % n != 0:
        raise ValueError(f"size {a.shape[0]} not divisible into {n} tiles")
    l = a.shape[0] // n

    result = simulate_qr(n, platform, scheduler, rng=rng)
    dag = QrDag(n)

    work = a.copy()

    def tile(i: int, j: int) -> np.ndarray:
        return work[i * l : (i + 1) * l, j * l : (j + 1) * l]

    q_panel: Dict[int, np.ndarray] = {}
    q_stack: Dict[Tuple[int, int], np.ndarray] = {}

    for _start, _worker, tid in result.schedule:
        task = dag.tasks[tid]
        if task.kind is QrTaskType.GEQRT:
            q, r = np.linalg.qr(tile(task.k, task.k), mode="complete")
            q_panel[task.k] = q
            tile(task.k, task.k)[:] = r
        elif task.kind is QrTaskType.UNMQR:
            tile(task.k, task.j)[:] = q_panel[task.k].T @ tile(task.k, task.j)
        elif task.kind is QrTaskType.TSQRT:
            stacked = np.vstack([tile(task.k, task.k), tile(task.i, task.k)])
            q, r = np.linalg.qr(stacked, mode="complete")
            q_stack[(task.i, task.k)] = q
            tile(task.k, task.k)[:] = r[:l]
            tile(task.i, task.k)[:] = 0.0
        else:  # TSMQR
            stacked = np.vstack([tile(task.k, task.j), tile(task.i, task.j)])
            stacked = q_stack[(task.i, task.k)].T @ stacked
            tile(task.k, task.j)[:] = stacked[:l]
            tile(task.i, task.j)[:] = stacked[l:]

    r_factor = work
    scale = float(np.max(np.abs(a.T @ a))) or 1.0
    gram_error = float(np.max(np.abs(r_factor.T @ r_factor - a.T @ a))) / scale
    triangularity_error = float(np.max(np.abs(np.tril(r_factor, -1))))
    r_ref = np.linalg.qr(a, mode="reduced")[1]
    r_match_error = float(np.max(np.abs(np.abs(np.triu(r_factor)) - np.abs(r_ref))))
    return QrReplay(
        r_factor=r_factor,
        simulation=result,
        gram_error=gram_error,
        triangularity_error=triangularity_error,
        r_match_error=r_match_error,
    )
