"""Tiled QR factorization with dynamic data-aware scheduling (extension).

The second kernel named in the paper's conclusion.  Flat-tree tiled
Householder QR of an ``n x n``-tile matrix spawns four task types::

    GEQRT(k)      : QR-factor the diagonal tile A[k,k] -> V[k,k], R[k,k]
    UNMQR(k,j)    : apply Q[k,k]^T to A[k,j]                    (j > k)
    TSQRT(i,k)    : QR-factor the stacked [R[k,k]; A[i,k]]      (i > k)
    TSMQR(i,k,j)  : apply the TSQRT(i,k) reflector to
                    the stacked [A[k,j]; A[i,j]]                (i, j > k)

TSQRT and TSMQR *write two tiles each* (the panel tile and the row-k tile
above it), exercising the generic engine's multi-write support.  The
scheduling model is identical to the Cholesky extension
(:mod:`repro.extensions.dagsched`).
"""

from repro.extensions.qr.dag import QrDag, QrTask, QrTaskType, qr_task_counts
from repro.extensions.qr.numerics import replay_qr
from repro.extensions.qr.scheduler import (
    LocalityScheduler,
    QrResult,
    RandomScheduler,
    simulate_qr,
)

__all__ = [
    "QrDag",
    "QrTask",
    "QrTaskType",
    "qr_task_counts",
    "simulate_qr",
    "RandomScheduler",
    "LocalityScheduler",
    "QrResult",
    "replay_qr",
]
