"""Extensions beyond the paper's evaluation.

The paper's conclusion names the obvious next step: "extending this work to
regular dense linear algebra kernels such as Cholesky or QR factorizations".
This package implements that step and more:

* :mod:`repro.extensions.dagsched` — a generic dependency-aware
  demand-driven engine with a write-invalidate tile-cache model and
  random / locality scheduling policies;
* :mod:`repro.extensions.cholesky` — blocked Cholesky
  (POTRF/TRSM/SYRK/GEMM) with numerical replay vs ``numpy``;
* :mod:`repro.extensions.qr` — flat-tree tiled QR
  (GEQRT/UNMQR/TSQRT/TSMQR, multi-write tasks) verified via R-factor
  invariants;
* :mod:`repro.extensions.lu` — tiled pivot-free LU for diagonally
  dominant matrices;
* :mod:`repro.extensions.overlap` — the paper's out-of-scope
  bandwidth/prefetch model, quantifying when the overlap assumption holds.

These modules are *extensions*: they are not needed to reproduce any figure
and their models make additional assumptions documented in their docstrings.
"""

from repro.extensions import cholesky, dagsched, lu, overlap, qr

__all__ = ["cholesky", "qr", "lu", "dagsched", "overlap"]
