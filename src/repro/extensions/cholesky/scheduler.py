"""Cholesky front-end over the generic DAG engine.

The engine and policies live in :mod:`repro.extensions.dagsched`; this
module builds the Cholesky DAG, names the policies after the kernel and
re-exports the result type under its historical name.
"""

from __future__ import annotations

from typing import Any

from repro.extensions.cholesky.dag import CholeskyDag
from repro.extensions.dagsched.engine import (
    DagSchedulingResult,
    LocalityScheduler as _LocalityScheduler,
    RandomScheduler as _RandomScheduler,
    simulate_dag,
)
from repro.platform.platform import Platform
from repro.utils.rng import SeedLike

__all__ = ["RandomScheduler", "LocalityScheduler", "CholeskyResult", "simulate_cholesky"]

# Historical alias: the result shape is the generic DAG one.
CholeskyResult = DagSchedulingResult


class RandomScheduler(_RandomScheduler):
    """Uniformly random ready-task selection."""

    name = "RandomCholesky"


class LocalityScheduler(_LocalityScheduler):
    """Fewest-missing-tiles selection with critical-path tie-break."""

    name = "LocalityCholesky"


def simulate_cholesky(
    n: int,
    platform: Platform,
    scheduler: Any = None,
    *,
    rng: SeedLike = None,
) -> DagSchedulingResult:
    """Simulate a blocked Cholesky factorization of ``n x n`` tiles.

    Returns communication (blocks fetched under write-invalidate caching),
    makespan, idle time and the full (start, worker, task) schedule — a
    valid topological order consumed by
    :func:`~repro.extensions.cholesky.numerics.replay_cholesky`.
    """
    policy = scheduler if scheduler is not None else LocalityScheduler()
    return simulate_dag(CholeskyDag(n), platform, policy, rng=rng)
