"""Blocked Cholesky factorization with dynamic data-aware scheduling.

The right-looking blocked Cholesky of an ``n x n``-tile SPD matrix spawns
the classical four task types (k is the panel index)::

    POTRF(k)      : L[k,k]  = chol(A[k,k])
    TRSM(i,k)     : L[i,k]  = A[i,k] @ inv(L[k,k])^T            (i > k)
    SYRK(i,k)     : A[i,i] -= L[i,k] @ L[i,k]^T                 (i > k)
    GEMM(i,j,k)   : A[i,j] -= L[i,k] @ L[j,k]^T                 (i > j > k)

Unlike the paper's kernels these tasks carry *precedence dependencies*, so
the demand-driven engine here tracks a ready set that grows as tasks
complete, and workers can legitimately idle.  Communication follows a
write-invalidate tile-cache model: a task fetches every input tile its
worker does not hold a valid copy of (one block each), and writing a tile
invalidates all other copies.
"""

from repro.extensions.cholesky.dag import CholeskyDag, Task, TaskType, task_counts
from repro.extensions.cholesky.numerics import replay_cholesky
from repro.extensions.cholesky.scheduler import (
    CholeskyResult,
    LocalityScheduler,
    RandomScheduler,
    simulate_cholesky,
)

__all__ = [
    "CholeskyDag",
    "Task",
    "TaskType",
    "task_counts",
    "simulate_cholesky",
    "RandomScheduler",
    "LocalityScheduler",
    "CholeskyResult",
    "replay_cholesky",
]
