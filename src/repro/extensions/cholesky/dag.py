"""The blocked-Cholesky task DAG.

Dependencies of the right-looking variant (all on the same tile versions):

* ``POTRF(k)`` waits for every ``SYRK(k, k') with k' < k``;
* ``TRSM(i, k)`` waits for ``POTRF(k)`` and every ``GEMM(i, k, k') with k' < k``;
* ``SYRK(i, k)`` waits for ``TRSM(i, k)``;
* ``GEMM(i, j, k)`` waits for ``TRSM(i, k)`` and ``TRSM(j, k)``.

Task counts for ``n`` tiles: ``n`` POTRF, ``n(n-1)/2`` TRSM, ``n(n-1)/2``
SYRK and ``n(n-1)(n-2)/6`` GEMM.

Each task declares the tiles it reads and the single tile it writes, which
is what the scheduler's cache model consumes; per-task *work* is the
classical flop weight so heterogeneous speeds stay meaningful (POTRF 1/3,
TRSM 1, SYRK 1, GEMM 2 block-flops).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.utils.validation import check_positive_int

__all__ = ["TaskType", "Task", "Tile", "CholeskyDag", "task_counts"]

Tile = Tuple[int, int]


class TaskType(enum.Enum):
    """The four tiled-Cholesky kernels (LAPACK naming)."""

    POTRF = "potrf"
    TRSM = "trsm"
    SYRK = "syrk"
    GEMM = "gemm"


# Relative flop weights of the four kernels on l x l tiles.
_WORK = {TaskType.POTRF: 1.0 / 3.0, TaskType.TRSM: 1.0, TaskType.SYRK: 1.0, TaskType.GEMM: 2.0}


@dataclass(frozen=True)
class Task:
    """One block task of the factorization."""

    kind: TaskType
    i: int
    j: int
    k: int
    reads: Tuple[Tile, ...]
    writes: Tile
    work: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}({self.i},{self.j},{self.k})"


def task_counts(n: int) -> Dict[TaskType, int]:
    """Closed-form task counts for an ``n``-tile factorization."""
    n = check_positive_int("n", n)
    return {
        TaskType.POTRF: n,
        TaskType.TRSM: n * (n - 1) // 2,
        TaskType.SYRK: n * (n - 1) // 2,
        TaskType.GEMM: n * (n - 1) * (n - 2) // 6,
    }


class CholeskyDag:
    """Tasks, dependency edges and critical-path priorities for ``n`` tiles."""

    def __init__(self, n: int) -> None:
        self.n = check_positive_int("n", n)
        self.tasks: List[Task] = []
        self._index: Dict[Tuple[TaskType, int, int, int], int] = {}
        self._build_tasks()
        self.successors: List[List[int]] = [[] for _ in self.tasks]
        self.n_deps: List[int] = [0] * len(self.tasks)
        self._build_edges()
        self.priority = self._critical_path_lengths()

    # -- construction ------------------------------------------------------

    def _add(self, kind: TaskType, i: int, j: int, k: int, reads: Iterable[Tile], writes: Tile) -> None:
        self._index[(kind, i, j, k)] = len(self.tasks)
        self.tasks.append(
            Task(kind=kind, i=i, j=j, k=k, reads=tuple(reads), writes=writes, work=_WORK[kind])
        )

    def _build_tasks(self) -> None:
        n = self.n
        for k in range(n):
            self._add(TaskType.POTRF, k, k, k, [(k, k)], (k, k))
            for i in range(k + 1, n):
                self._add(TaskType.TRSM, i, k, k, [(k, k), (i, k)], (i, k))
            for i in range(k + 1, n):
                self._add(TaskType.SYRK, i, i, k, [(i, k), (i, i)], (i, i))
                for j in range(k + 1, i):
                    self._add(TaskType.GEMM, i, j, k, [(i, k), (j, k), (i, j)], (i, j))

    def _edge(self, src_key: Tuple[TaskType, int, int, int], dst_key: Tuple[TaskType, int, int, int]) -> None:
        src = self._index[src_key]
        dst = self._index[dst_key]
        self.successors[src].append(dst)
        self.n_deps[dst] += 1

    def _build_edges(self) -> None:
        n = self.n
        for k in range(n):
            for kp in range(k):
                self._edge((TaskType.SYRK, k, k, kp), (TaskType.POTRF, k, k, k))
            for i in range(k + 1, n):
                self._edge((TaskType.POTRF, k, k, k), (TaskType.TRSM, i, k, k))
                for kp in range(k):
                    self._edge((TaskType.GEMM, i, k, kp), (TaskType.TRSM, i, k, k))
                self._edge((TaskType.TRSM, i, k, k), (TaskType.SYRK, i, i, k))
                for j in range(k + 1, i):
                    self._edge((TaskType.TRSM, i, k, k), (TaskType.GEMM, i, j, k))
                    self._edge((TaskType.TRSM, j, k, k), (TaskType.GEMM, i, j, k))

    def _critical_path_lengths(self) -> List[float]:
        """Longest work-weighted path from each task to a sink (HEFT-style
        upward rank with uniform speeds); used as the tie-break priority."""
        order = self._topological_order()
        rank = [0.0] * len(self.tasks)
        for t in reversed(order):
            best = 0.0
            for s in self.successors[t]:
                best = max(best, rank[s])
            rank[t] = self.tasks[t].work + best
        return rank

    def _topological_order(self) -> List[int]:
        indeg = list(self.n_deps)
        stack = [t for t, d in enumerate(indeg) if d == 0]
        order: List[int] = []
        while stack:
            t = stack.pop()
            order.append(t)
            for s in self.successors[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        if len(order) != len(self.tasks):  # pragma: no cover - structural bug guard
            raise RuntimeError("Cholesky DAG contains a cycle")
        return order

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def task_id(self, kind: TaskType, i: int, j: int, k: int) -> int:
        return self._index[(kind, i, j, k)]

    def initial_ready(self) -> List[int]:
        """Tasks with no dependencies (just ``POTRF(0)`` for n >= 1... plus
        any independent first-panel TRSMs once POTRF(0) completes)."""
        return [t for t, d in enumerate(self.n_deps) if d == 0]
