"""Numerical replay of a scheduled Cholesky factorization.

Executes the simulated schedule's tasks in assignment order (a valid
topological order of the DAG) on a real SPD matrix, and compares the
resulting factor with the reference: ``L L^T = A`` and ``L`` equal (up to
floating point) to ``numpy.linalg.cholesky(A)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Any

import numpy as np
from scipy import linalg as sla

from repro.extensions.cholesky.dag import TaskType
from repro.extensions.cholesky.scheduler import CholeskyResult, simulate_cholesky
from repro.platform.platform import Platform
from repro.utils.rng import SeedLike, as_generator

__all__ = ["CholeskyReplay", "replay_cholesky", "random_spd"]


@dataclass(frozen=True)
class CholeskyReplay:
    """Outcome of one numerical Cholesky replay."""

    factor: np.ndarray
    simulation: CholeskyResult
    max_abs_error: float  # || L L^T - A ||_max
    max_factor_error: float  # || L - chol(A) ||_max


def random_spd(size: int, *, rng: SeedLike = None) -> np.ndarray:
    """A well-conditioned random SPD matrix of the given size."""
    m = as_generator(rng).normal(size=(size, size))
    return m @ m.T + size * np.eye(size)


def replay_cholesky(
    a: np.ndarray,
    n: int,
    platform: Platform,
    scheduler: Any = None,
    *,
    rng: SeedLike = None,
) -> CholeskyReplay:
    """Factorize *a* (SPD, size divisible into ``n`` tiles) via a simulated
    schedule and verify the result numerically."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected a square matrix, got {a.shape}")
    if a.shape[0] % n != 0:
        raise ValueError(f"size {a.shape[0]} not divisible into {n} tiles")
    l = a.shape[0] // n

    result = simulate_cholesky(n, platform, scheduler, rng=rng)

    work = a.copy()

    def tile(i: int, j: int) -> np.ndarray:
        return work[i * l : (i + 1) * l, j * l : (j + 1) * l]

    from repro.extensions.cholesky.dag import CholeskyDag

    dag = CholeskyDag(n)

    for _start, _worker, tid in result.schedule:
        task = dag.tasks[tid]
        if task.kind is TaskType.POTRF:
            tile(task.k, task.k)[:] = np.linalg.cholesky(tile(task.k, task.k))
        elif task.kind is TaskType.TRSM:
            # L[i,k] = A[i,k] @ inv(L[k,k])^T  <=>  solve L[k,k] X^T = A^T.
            lkk = tile(task.k, task.k)
            aik = tile(task.i, task.k)
            aik[:] = sla.solve_triangular(lkk, aik.T, lower=True).T
        elif task.kind is TaskType.SYRK:
            lik = tile(task.i, task.k)
            tile(task.i, task.i)[:] -= lik @ lik.T
        else:  # GEMM
            lik = tile(task.i, task.k)
            ljk = tile(task.j, task.k)
            tile(task.i, task.j)[:] -= lik @ ljk.T

    factor = np.tril(work)
    max_abs_error = float(np.max(np.abs(factor @ factor.T - a)))
    max_factor_error = float(np.max(np.abs(factor - np.linalg.cholesky(a))))
    return CholeskyReplay(
        factor=factor,
        simulation=result,
        max_abs_error=max_abs_error,
        max_factor_error=max_factor_error,
    )
