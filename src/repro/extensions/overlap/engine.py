"""Event-driven engine with a bandwidth-limited master uplink.

Model
-----
* The master owns all data; every shipped block crosses one shared FIFO
  link of bandwidth ``B`` blocks per time unit (a transfer of ``b`` blocks
  occupies the link for ``b / B``).  ``B = inf`` recovers the paper's
  overlapped model exactly.
* A worker keeps a FIFO queue of received-but-unprocessed assignments and
  computes them in order, one batch at a time (batch of ``m`` tasks takes
  ``m / s_k``).
* Demand-driven with request-ahead: a worker issues a (single outstanding)
  request whenever its queued task count is below the prefetch threshold
  θ.  The master runs the strategy *at service time* (when the link picks
  the request up), so allocation decisions see the freshest state.
* The run ends when the strategy has allocated everything and all queues
  drained.

Metrics: makespan, per-worker busy time (=> idle fraction), total blocks,
and the ideal compute-bound makespan ``total_tasks / sum(s)`` for
comparison.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.core.strategies.base import Strategy
from repro.platform.platform import Platform
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_nonnegative_int

__all__ = ["OverlapResult", "simulate_with_bandwidth"]


@dataclass(frozen=True)
class OverlapResult:
    """Outcome of one bandwidth-limited run."""

    total_blocks: int
    per_worker_blocks: np.ndarray
    per_worker_tasks: np.ndarray
    per_worker_busy: np.ndarray
    makespan: float
    ideal_makespan: float
    link_busy_time: float
    strategy_name: str
    bandwidth: float
    prefetch_tasks: int

    @property
    def total_tasks(self) -> int:
        return int(self.per_worker_tasks.sum())

    @property
    def slowdown(self) -> float:
        """Makespan over the compute-bound ideal (1.0 = perfect overlap)."""
        return self.makespan / self.ideal_makespan

    @property
    def mean_idle_fraction(self) -> float:
        """Average fraction of the makespan workers spend not computing."""
        if self.makespan == 0:
            return 0.0
        return float(np.mean(1.0 - self.per_worker_busy / self.makespan))


class _Worker:
    __slots__ = ("queue", "queued_tasks", "busy", "outstanding")

    def __init__(self) -> None:
        self.queue: Deque[int] = deque()  # batches of task counts
        self.queued_tasks = 0
        self.busy = False
        self.outstanding = False


def simulate_with_bandwidth(
    strategy: Strategy,
    platform: Platform,
    *,
    bandwidth: float,
    prefetch_tasks: int = 0,
    worker_bandwidths: Optional[npt.ArrayLike] = None,
    rng: SeedLike = None,
) -> OverlapResult:
    """Run *strategy* under a finite master-uplink bandwidth.

    Parameters
    ----------
    bandwidth:
        Master NIC capacity in blocks per time unit (``math.inf`` allowed).
    prefetch_tasks:
        Request-ahead threshold θ: a worker re-requests while its queued
        task count is ≤ θ.  ``0`` means "request only when empty" (no
        overlap beyond the current transfer); the paper's assumption
        corresponds to θ large enough that workers never starve.
    worker_bandwidths:
        Optional per-worker downlink capacities (star topology): a
        transfer to worker ``w`` proceeds at
        ``min(bandwidth, worker_bandwidths[w])`` while still serializing
        on the master NIC.  ``None`` models a uniform bus.
    """
    if not (bandwidth > 0):
        raise ValueError(f"bandwidth must be positive (or inf), got {bandwidth}")
    prefetch_tasks = check_nonnegative_int("prefetch_tasks", prefetch_tasks)
    if worker_bandwidths is not None:
        worker_bandwidths = np.asarray(worker_bandwidths, dtype=float)
        if worker_bandwidths.shape != (platform.p,):
            raise ValueError(
                f"worker_bandwidths must have one entry per worker "
                f"({platform.p}), got shape {worker_bandwidths.shape}"
            )
        if np.any(worker_bandwidths <= 0):
            raise ValueError("worker_bandwidths must be positive")

    generator = as_generator(rng)
    strategy.reset(platform, generator)

    p = platform.p
    speeds = platform.speeds
    workers = [_Worker() for _ in range(p)]
    blocks = np.zeros(p, dtype=np.int64)
    tasks = np.zeros(p, dtype=np.int64)
    busy_time = np.zeros(p, dtype=np.float64)

    # Event heap: (time, seq, kind, worker) with kind 0 = transfer done,
    # kind 1 = compute done.  The link is modeled by `link_free`; requests
    # wait in `pending` until the link serves them FIFO.
    heap: List[Tuple[float, int, int, int]] = []
    seq = 0
    pending: Deque[int] = deque()
    link_free = 0.0
    link_busy = 0.0
    makespan = 0.0

    def push(time: float, kind: int, worker: int) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, seq, kind, worker))
        seq += 1

    # Task count of each worker's (single) in-flight transfer.
    _in_flight = {}

    def serve_link(now: float) -> None:
        """Serve pending requests FIFO while the link is idle.

        Each service runs the strategy, occupies the link for
        ``blocks / B`` and schedules the delivery event; with a positive
        duration at most one transfer starts per call (the next is served
        when its completion event fires).
        """
        nonlocal link_free, link_busy
        while pending and link_free <= now:
            w = pending.popleft()
            if strategy.done:
                workers[w].outstanding = False
                continue
            assignment = strategy.assign(w, now)
            blocks[w] += assignment.blocks
            rate = bandwidth
            if worker_bandwidths is not None:
                rate = min(rate, float(worker_bandwidths[w]))
            duration = assignment.blocks / rate if math.isfinite(rate) else 0.0
            link_free = now + duration
            link_busy += duration
            _in_flight[w] = assignment.tasks
            push(link_free, 0, w)

    def maybe_request(w: int, now: float) -> None:
        worker = workers[w]
        if worker.outstanding or strategy.done:
            return
        if worker.queued_tasks <= prefetch_tasks:
            worker.outstanding = True
            pending.append(w)
            serve_link(now)

    def start_compute(w: int, now: float) -> None:
        nonlocal makespan
        worker = workers[w]
        if worker.busy or not worker.queue:
            return
        batch = worker.queue.popleft()
        if batch == 0:
            # Empty assignment (tail of a Dynamic* strategy): skip it.
            while worker.queue and worker.queue[0] == 0:
                worker.queue.popleft()
            if not worker.queue:
                maybe_request(w, now)
                return
            batch = worker.queue.popleft()
        worker.busy = True
        duration = batch / float(speeds[w])
        busy_time[w] += duration
        tasks[w] += batch
        worker.queued_tasks -= batch
        push(now + duration, 1, w)
        makespan = max(makespan, now + duration)

    # Kick-off: every worker requests at t = 0.
    for w in range(p):
        workers[w].outstanding = True
        pending.append(w)
    serve_link(0.0)

    while heap:
        now, _, kind, w = heapq.heappop(heap)
        worker = workers[w]
        if kind == 0:  # transfer arrived
            delivered = _in_flight.pop(w)
            worker.outstanding = False
            worker.queue.append(delivered)
            worker.queued_tasks += delivered
            serve_link(now)  # link is free again: serve the next request
            start_compute(w, now)
            maybe_request(w, now)
        else:  # compute batch finished
            worker.busy = False
            start_compute(w, now)
            maybe_request(w, now)

    if not strategy.done:  # pragma: no cover - structural guard
        raise RuntimeError("bandwidth simulation ended with unallocated tasks")

    total = int(tasks.sum())
    return OverlapResult(
        total_blocks=int(blocks.sum()),
        per_worker_blocks=blocks,
        per_worker_tasks=tasks,
        per_worker_busy=busy_time,
        makespan=makespan,
        ideal_makespan=total / platform.total_speed,
        link_busy_time=link_busy,
        strategy_name=strategy.name,
        bandwidth=bandwidth,
        prefetch_tasks=prefetch_tasks,
    )
