"""Bandwidth-limited execution: when does the overlap assumption hold?

The paper's analysis counts communication *volume* and assumes transfers
are fully overlapped with computation — "determining this threshold would
require to introduce a communication model and a topology, what is out of
the scope of this paper.  [...] a rigorous algorithm to estimate it is
still missing" (Section 3.1).  This extension supplies the missing model:

* the master serves transfers over a single FIFO uplink of bandwidth ``B``
  blocks per time unit;
* a worker *requests ahead*: it asks for a new assignment whenever its
  queued task count drops below a prefetch threshold θ;
* an assignment's blocks must fully arrive before its tasks can start.

The resulting simulator measures makespan and idle time as functions of
``B`` and θ, quantifying (a) the critical bandwidth below which overlap is
impossible, and (b) how small a prefetch depth suffices above it — the
paper's "the number of tasks required to ensure a good overlap has been
observed to be small".
"""

from repro.extensions.overlap.engine import OverlapResult, simulate_with_bandwidth
from repro.extensions.overlap.study import critical_bandwidth, overlap_study

__all__ = [
    "simulate_with_bandwidth",
    "OverlapResult",
    "critical_bandwidth",
    "overlap_study",
]
