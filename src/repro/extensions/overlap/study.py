"""Prefetch-depth and bandwidth studies on the overlap engine.

Two quantities the paper leaves open:

* the **critical bandwidth** ``B* = V / T_ideal`` — the link rate below
  which the run is necessarily communication-bound (the total volume ``V``
  cannot fit into the compute-bound makespan ``T_ideal``);
* the **prefetch depth** θ needed to actually achieve overlap when
  ``B > B*`` — the paper reports it "has been observed to be small";
  :func:`overlap_study` measures it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.core.strategies.base import Strategy
from repro.extensions.overlap.engine import OverlapResult, simulate_with_bandwidth
from repro.platform.platform import Platform
from repro.simulator.engine import simulate
from repro.utils.rng import SeedLike

__all__ = ["critical_bandwidth", "overlap_study"]


def critical_bandwidth(
    strategy_factory: Callable[[], Strategy],
    platform: Platform,
    *,
    rng: SeedLike = 0,
) -> float:
    """Estimate ``B* = V / T_ideal`` from one volume-only simulation.

    Below ``B*`` even perfect pipelining cannot hide the transfers; above
    it, overlap is possible in principle and the residual slowdown is a
    scheduling/prefetch question.
    """
    strategy = strategy_factory()
    result = simulate(strategy, platform, rng=rng)
    ideal = result.total_tasks / platform.total_speed
    return result.total_blocks / ideal


def overlap_study(
    strategy_factory: Callable[[], Strategy],
    platform: Platform,
    *,
    bandwidth_factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    prefetch_depths: Sequence[int] = (0, 1, 2, 4, 8, 16),
    rng: SeedLike = 0,
) -> Dict[float, List[OverlapResult]]:
    """Sweep link bandwidth (as multiples of ``B*``) and prefetch depth.

    Returns ``{bandwidth_factor: [OverlapResult per prefetch depth]}``;
    each result's :attr:`~OverlapResult.slowdown` is makespan over the
    compute-bound ideal.
    """
    b_star = critical_bandwidth(strategy_factory, platform, rng=rng)
    out: Dict[float, List[OverlapResult]] = {}
    for factor in bandwidth_factors:
        row: List[OverlapResult] = []
        for depth in prefetch_depths:
            result = simulate_with_bandwidth(
                strategy_factory(),
                platform,
                bandwidth=factor * b_star,
                prefetch_tasks=depth,
                rng=rng,
            )
            row.append(result)
        out[factor] = row
    return out
