"""The generic dependency-aware engine (see package docstring).

This is the engine formerly embedded in the Cholesky extension,
generalized over any DAG exposing ``tasks / successors / n_deps /
priority / initial_ready()``.  Semantics are unchanged:

* demand-driven with a FIFO idle queue (workers wake as tasks turn ready);
* write-invalidate tile caching — a task fetches one block per input tile
  its worker lacks a valid copy of; completing a write leaves the writer
  as the tile's sole holder;
* per-task duration ``work / speed``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.platform.platform import Platform
from repro.utils.rng import SeedLike, as_generator

__all__ = ["RandomScheduler", "LocalityScheduler", "DagSchedulingResult", "simulate_dag"]


def _written_tiles(task: Any) -> tuple:
    """The tiles a task writes: ``writes`` plus optional ``extra_writes``.

    Most kernels update one tile; tiled-QR's TSQRT/TSMQR update two (the
    panel tile and the R tile above it), declared via ``extra_writes``.
    """
    return (task.writes,) + tuple(getattr(task, "extra_writes", ()))


def _touched_tiles(task: Any) -> set:
    """All tiles a task needs resident on its worker (reads and writes)."""
    return set(task.reads) | set(_written_tiles(task))


class RandomScheduler:
    """Pick a uniformly random ready task (locality-oblivious baseline)."""

    name = "RandomDag"

    def pick(self, worker: int, ready: List[int], dag: Any, holders: Any, rng: np.random.Generator) -> int:
        return ready[int(rng.integers(len(ready)))]


class LocalityScheduler:
    """Pick the ready task with the fewest missing tiles on the worker.

    Ties are broken by the larger priority (finish long chains first),
    then uniformly at random.
    """

    name = "LocalityDag"

    def pick(self, worker: int, ready: List[int], dag: Any, holders: Any, rng: np.random.Generator) -> int:
        best: List[int] = []
        best_key: Optional[Tuple[float, float]] = None
        for t in ready:
            task = dag.tasks[t]
            missing = 0
            for tile in _touched_tiles(task):
                if worker not in holders.get(tile, ()):
                    missing += 1
            key = (missing, -dag.priority[t])
            if best_key is None or key < best_key:
                best_key = key
                best = [t]
            elif key == best_key:
                best.append(t)
        return best[int(rng.integers(len(best)))]


@dataclass(frozen=True)
class DagSchedulingResult:
    """Outcome of one DAG simulation."""

    total_blocks: int
    per_worker_blocks: np.ndarray
    per_worker_tasks: np.ndarray
    makespan: float
    idle_time: float
    schedule: List[Tuple[float, int, int]]  # (start_time, worker, task_id)
    scheduler_name: str

    @property
    def total_tasks(self) -> int:
        return int(self.per_worker_tasks.sum())


@dataclass
class _State:
    ready: List[int] = field(default_factory=list)
    idle: List[Tuple[float, int]] = field(default_factory=list)


def simulate_dag(
    dag: Any,
    platform: Platform,
    scheduler: Any = None,
    *,
    rng: SeedLike = None,
    prefer_finishing_worker: bool = False,
) -> DagSchedulingResult:
    """Simulate *dag* on *platform*; see the package docstring for the model.

    ``prefer_finishing_worker`` controls who is served first when a task
    completion unlocks new work: by default the longest-idle workers (FIFO
    demand order — they requested earlier), which is fair but makes pure
    dependency chains *rotate* across workers, re-fetching their tile on
    every hop.  Setting it to ``True`` lets the just-finished worker —
    whose cache is warm with the tiles it just wrote — request first,
    keeping chains local at the cost of longer idle tails elsewhere.
    """
    generator = as_generator(rng)
    policy = scheduler if scheduler is not None else LocalityScheduler()

    n_deps = list(dag.n_deps)
    state = _State(ready=list(dag.initial_ready()))
    holders: Dict[Hashable, Set[int]] = {}

    p = platform.p
    blocks = np.zeros(p, dtype=np.int64)
    tasks_done = np.zeros(p, dtype=np.int64)
    schedule: List[Tuple[float, int, int]] = []
    completions: List[Tuple[float, int, int, int]] = []
    seq = 0
    makespan = 0.0
    idle_time = 0.0
    remaining = len(dag.tasks)

    def assign(worker: int, now: float) -> None:
        nonlocal seq
        idx = policy.pick(worker, state.ready, dag, holders, generator)
        state.ready.remove(idx)
        task = dag.tasks[idx]
        fetched = 0
        for tile in _touched_tiles(task):
            held = holders.setdefault(tile, set())
            if worker not in held:
                fetched += 1
                held.add(worker)
        blocks[worker] += fetched
        schedule.append((now, worker, idx))
        duration = task.work / float(platform.speeds[worker])
        heapq.heappush(completions, (now + duration, seq, worker, idx))
        seq += 1

    for w in range(p):
        if state.ready:
            assign(w, 0.0)
        else:
            state.idle.append((0.0, w))

    while completions:
        now, _, worker, finished = heapq.heappop(completions)
        makespan = max(makespan, now)
        task = dag.tasks[finished]
        tasks_done[worker] += 1
        remaining -= 1
        for tile in _written_tiles(task):
            holders[tile] = {worker}
        for s in dag.successors[finished]:
            n_deps[s] -= 1
            if n_deps[s] == 0:
                state.ready.append(s)
        finisher_served = False
        if prefer_finishing_worker and state.ready:
            assign(worker, now)
            finisher_served = True
        still_idle: List[Tuple[float, int]] = []
        for since, w in state.idle:
            if state.ready:
                idle_time += now - since
                assign(w, now)
            else:
                still_idle.append((since, w))
        state.idle = still_idle
        if not finisher_served:
            if state.ready:
                assign(worker, now)
            else:
                state.idle.append((now, worker))

    if remaining != 0:  # pragma: no cover - structural bug guard
        raise RuntimeError(f"{remaining} DAG tasks never completed")

    return DagSchedulingResult(
        total_blocks=int(blocks.sum()),
        per_worker_blocks=blocks,
        per_worker_tasks=tasks_done,
        makespan=makespan,
        idle_time=idle_time,
        schedule=schedule,
        scheduler_name=policy.name,
    )
