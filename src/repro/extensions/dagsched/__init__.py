"""Generic dependency-aware demand-driven DAG scheduling.

Factored out of the Cholesky extension so any tiled-factorization DAG
(Cholesky, QR, LU, ...) can reuse the same engine and policies.  A *DAG*
object must expose:

* ``tasks`` — list of task objects with ``reads`` (tuple of tile ids),
  ``writes`` (one tile id) and ``work`` (float weight);
* ``successors`` — adjacency list (list of lists of task indices);
* ``n_deps`` — in-degree per task;
* ``priority`` — a scheduling priority per task (larger = more urgent),
  e.g. the HEFT-style upward rank;
* ``initial_ready()`` — indices of zero-in-degree tasks.

The engine (:func:`simulate_dag`) is demand-driven with a write-invalidate
tile-cache communication model; see
:mod:`repro.extensions.cholesky` for the modelling discussion.
"""

from repro.extensions.dagsched.engine import (
    DagSchedulingResult,
    LocalityScheduler,
    RandomScheduler,
    simulate_dag,
)

__all__ = [
    "simulate_dag",
    "DagSchedulingResult",
    "RandomScheduler",
    "LocalityScheduler",
]
