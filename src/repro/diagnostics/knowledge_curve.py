"""Measure per-worker knowledge growth and compare with Lemmas 1/2/7/8.

An instrumented strategy wrapper records, at every assignment a worker
receives, the triple ``(time, x, fresh_tasks)`` where ``x`` is the worker's
knowledge fraction after the assignment and ``fresh_tasks`` the number of
newly allocated tasks.  From these samples we reconstruct:

* the **empirical g_k(x)**: the fraction of tasks on the newly acquired
  cross/shell that were still unprocessed, to compare with
  ``(1 - x^d)^alpha_k`` (Lemma 1 / 7);
* the **empirical t_k(x)**: the request times, to compare with
  ``n^d (1 - (1 - x^d)^(alpha_k+1)) / sum(s)`` (Lemma 2 / 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.analysis.ode import time_to_knowledge, unprocessed_fraction
from repro.core.strategies.base import Assignment
from repro.core.strategies.matrix_dynamic import MatrixDynamic
from repro.core.strategies.outer_dynamic import OuterDynamic
from repro.platform.platform import Platform
from repro.simulator.engine import simulate
from repro.utils.rng import SeedLike

__all__ = [
    "KnowledgeCurve",
    "measure_outer_knowledge_curves",
    "measure_matrix_knowledge_curves",
]


@dataclass
class KnowledgeCurve:
    """Empirical knowledge-growth samples of one worker.

    ``x[i]`` is the knowledge fraction after the i-th assignment, ``t[i]``
    the time of the request, ``g[i]`` the fresh-task fraction observed on
    the acquired cross/shell (NaN when the cross was empty).
    """

    worker: int
    alpha: float
    d: int
    n: int
    x: np.ndarray
    t: np.ndarray
    g: np.ndarray

    def predicted_g(self) -> np.ndarray:
        """Lemma 1 / 7 prediction ``(1 - x^d)^alpha`` at the sample points."""
        return unprocessed_fraction(np.clip(self.x, 0.0, 1.0), self.alpha, self.d)

    def predicted_t(self, total_speed: float) -> np.ndarray:
        """Lemma 2 / 8 prediction of the request times at the sample points."""
        return time_to_knowledge(np.clip(self.x, 0.0, 1.0), self.alpha, self.n, self.d) / total_speed

    def g_rmse(self, x_max: float = 0.9) -> float:
        """RMS error between empirical and predicted g over ``x <= x_max``.

        The tail (x near the worker's final knowledge) is excluded: there
        the finite process deviates from the continuous model by design —
        that is precisely the regime the two-phase switch removes.
        """
        mask = (self.x <= x_max) & ~np.isnan(self.g)
        if not np.any(mask):
            return float("nan")
        return float(np.sqrt(np.mean((self.g[mask] - self.predicted_g()[mask]) ** 2)))

    def t_relative_error(self, total_speed: float, x_max: float = 0.9) -> float:
        """Max relative error between empirical and predicted request times."""
        predicted = self.predicted_t(total_speed)
        mask = (self.x <= x_max) & (predicted > 0)
        if not np.any(mask):
            return float("nan")
        return float(np.max(np.abs(self.t[mask] - predicted[mask]) / predicted[mask]))


class _InstrumentedOuter(OuterDynamic):
    """DynamicOuter that records (time, x, fresh fraction) per assignment."""

    name = "InstrumentedDynamicOuter"

    def _setup(self) -> None:
        super()._setup()
        self.samples: List[List[tuple]] = [[] for _ in range(self.platform.p)]

    def assign(self, worker: int, now: float) -> Assignment:
        kn = self._knowledge[worker]
        # Knowledge fraction *at the time of the request* — this is the x
        # of Lemmas 1-2 (the step then takes it to x + 1/n).
        before = kn.a.count + kn.b.count
        x = 0.5 * before / self.n
        assignment = super().assign(worker, now)
        after = kn.a.count + kn.b.count
        cross_cells = 0
        if after > before:  # normal growth step
            # New row crossed with (old cols + new col) and old rows with
            # the new col: |J|+1 + |I| cells when both dims grew.
            grew = after - before
            if grew == 2:
                cross_cells = kn.b.count + kn.a.count - 1
            else:  # one dimension exhausted
                cross_cells = kn.a.count if kn.b.complete else kn.b.count
        fresh = assignment.tasks / cross_cells if cross_cells > 0 else np.nan
        self.samples[worker].append((now, x, fresh))
        return assignment


class _InstrumentedMatrix(MatrixDynamic):
    """DynamicMatrix that records (time, x, fresh fraction) per assignment."""

    name = "InstrumentedDynamicMatrix"

    def _setup(self) -> None:
        super()._setup()
        self.samples: List[List[tuple]] = [[] for _ in range(self.platform.p)]

    def assign(self, worker: int, now: float) -> Assignment:
        kn = self._knowledge[worker]
        before = (kn.i.count, kn.j.count, kn.k.count)
        x = (before[0] + before[1] + before[2]) / (3.0 * self.n)
        assignment = super().assign(worker, now)
        after = (kn.i.count, kn.j.count, kn.k.count)
        # Shell size of the grown cube minus the old cube.
        old_cube = before[0] * before[1] * before[2]
        new_cube = after[0] * after[1] * after[2]
        shell = new_cube - old_cube
        fresh = assignment.tasks / shell if shell > 0 else np.nan
        self.samples[worker].append((now, x, fresh))
        return assignment


def _curves_from(strategy: "_InstrumentedOuter | _InstrumentedMatrix", platform: Platform, d: int, n: int) -> List[KnowledgeCurve]:
    total = platform.speeds.sum()
    curves = []
    for w in range(platform.p):
        samples = strategy.samples[w]
        if not samples:
            continue
        t, x, g = (np.array(col, dtype=float) for col in zip(*samples))
        alpha = float((total - platform.speeds[w]) / platform.speeds[w])
        curves.append(KnowledgeCurve(worker=w, alpha=alpha, d=d, n=n, x=x, t=t, g=g))
    return curves


def measure_outer_knowledge_curves(
    n: int, platform: Platform, *, rng: SeedLike = None
) -> List[KnowledgeCurve]:
    """Run an instrumented DynamicOuter and return per-worker curves."""
    strategy = _InstrumentedOuter(n)
    simulate(strategy, platform, rng=rng)
    return _curves_from(strategy, platform, d=2, n=n)


def measure_matrix_knowledge_curves(
    n: int, platform: Platform, *, rng: SeedLike = None
) -> List[KnowledgeCurve]:
    """Run an instrumented DynamicMatrix and return per-worker curves."""
    strategy = _InstrumentedMatrix(n)
    simulate(strategy, platform, rng=rng)
    return _curves_from(strategy, platform, d=3, n=n)
