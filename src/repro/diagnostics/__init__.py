"""Diagnostics: empirical validation of the ODE model against traces.

The paper's Lemmas 1/2 (and 7/8 for matmul) describe, for one worker, the
fraction ``g_k(x)`` of unprocessed tasks in the not-yet-owned region and the
time ``t_k(x)`` at which a knowledge fraction ``x`` is reached.  This
package *measures* those quantities from instrumented simulation runs and
compares them with the closed forms — the finest-grained check that the
continuous approximation is sound, beyond the end-to-end volume comparison
of the figures.
"""

from repro.diagnostics.knowledge_curve import (
    KnowledgeCurve,
    measure_matrix_knowledge_curves,
    measure_outer_knowledge_curves,
)

__all__ = [
    "KnowledgeCurve",
    "measure_outer_knowledge_curves",
    "measure_matrix_knowledge_curves",
]
