"""The simulation lane: cache-first, coalescing, priority-batched.

Every simulation cell a client POSTs flows through one
:class:`SimulationLane`:

1. **Cache probe** — ``store.get`` runs on the executor (file I/O off the
   event loop); a hit answers immediately with the cached summary.
2. **Coalescing** — cells are identified by their canonical key
   fingerprint; a second request for an in-flight fingerprint attaches to
   the first one's future instead of queueing again, so N identical sweeps
   cost one engine run.  The in-flight table is re-checked *after* the
   cache probe's await, closing the window where two misses for the same
   cell interleave on the loop.
3. **Admission** — a bounded priority queue; when ``max_queue`` cells are
   already waiting the submit fails with :class:`AdmissionError`
   (HTTP 503), which is what keeps a paper-scale grid from buffering
   unboundedly instead of pushing back.
4. **Batched compute** — lane workers pop up to ``batch_max`` cells in
   ``(-priority, arrival)`` order and run them through
   :func:`repro.experiments.parallel.run_cells` on the executor with the
   shared store as cache, so results are written back through the same
   content-addressed path every other runner uses.

The lane is single-loop asyncio plus a thread executor; the only
thread-shared objects are the store (internally locked) and the
:class:`~repro.serve.telemetry.ServiceSink` (internally locked).
"""

from __future__ import annotations

import asyncio
import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.parallel import run_cells
from repro.serve.protocol import CellSpec
from repro.serve.telemetry import ServiceSink
from repro.store.cache import ResultStore
from repro.store.cells import CELL_KIND, summary_to_payload
from repro.utils.validation import check_positive_int

__all__ = ["AdmissionError", "CellOutcome", "SimulationLane"]


class AdmissionError(RuntimeError):
    """The lane refused a cell; ``reason`` picks the HTTP status."""

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


class CellOutcome:
    """Terminal result of one submitted cell, as seen by one requester.

    ``status`` is ``"hit"`` (served from cache), ``"computed"`` (this
    request triggered the engine run), ``"coalesced"`` (attached to another
    request's run) or ``"error"``; ``latency_s`` is *this requester's* wall
    wait, so coalesced requesters report their own latency even though the
    engine ran once.
    """

    __slots__ = ("fingerprint", "status", "summary", "error", "latency_s")

    def __init__(
        self,
        fingerprint: str,
        status: str,
        summary: Optional[Dict[str, Any]],
        error: Optional[str],
        latency_s: float,
    ) -> None:
        self.fingerprint = fingerprint
        self.status = status
        self.summary = summary
        self.error = error
        self.latency_s = latency_s

    def payload(self) -> Dict[str, Any]:
        """JSON-ready response body for this outcome."""
        return {
            "fingerprint": self.fingerprint,
            "status": self.status,
            "summary": self.summary,
            "error": self.error,
            "latency_s": self.latency_s,
        }


class _Settled:
    """What a finished engine run hands every attached requester."""

    __slots__ = ("summary", "error")

    def __init__(self, summary: Optional[Dict[str, Any]], error: Optional[str]) -> None:
        self.summary = summary
        self.error = error


class _Job:
    """One queued-or-running cell: the spec plus the shared future."""

    __slots__ = ("cell", "future")

    def __init__(self, cell: CellSpec, future: "asyncio.Future[_Settled]") -> None:
        self.cell = cell
        self.future = future


class SimulationLane:
    """The bounded, coalescing, priority-ordered simulation queue."""

    def __init__(
        self,
        store: ResultStore,
        sink: ServiceSink,
        executor: ThreadPoolExecutor,
        *,
        workers: int = 2,
        max_queue: int = 64,
        batch_max: int = 8,
        cell_workers: int = 1,
    ) -> None:
        self._store = store
        self._sink = sink
        self._executor = executor
        self._workers = check_positive_int("workers", workers)
        self._max_queue = check_positive_int("max_queue", max_queue)
        self._batch_max = check_positive_int("batch_max", batch_max)
        self._cell_workers = check_positive_int("cell_workers", cell_workers)
        self._jobs: Dict[str, _Job] = {}
        self._heap: List[Tuple[int, int, _Job]] = []
        self._seq = 0
        self._draining = False
        self._wakeup = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._tasks: List["asyncio.Task[None]"] = []

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the lane's worker tasks (idempotent)."""
        if self._tasks:
            return
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._worker()) for _ in range(self._workers)
        ]

    async def drain(self) -> None:
        """Stop admitting, wait for every in-flight cell, stop the workers."""
        self._draining = True
        await self._idle.wait()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:  # repro: noqa[R-SILENT]
                pass  # the cancellation IS the outcome we asked for
        self._tasks = []

    @property
    def queue_depth(self) -> int:
        """Cells admitted but not yet picked up by a worker."""
        return len(self._heap)

    @property
    def in_flight(self) -> int:
        """Cells admitted and not yet settled (queued + running)."""
        return len(self._jobs)

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun; submits are rejected."""
        return self._draining

    # -- submission ---------------------------------------------------------

    async def submit(self, cell: CellSpec) -> CellOutcome:
        """Resolve one cell: cache hit, coalesce, or queue for compute.

        Raises :class:`AdmissionError` when draining or when the queue is
        full; every other failure settles into an ``"error"`` outcome so
        one bad cell in a sweep doesn't poison its siblings.
        """
        start = time.monotonic()
        fp = cell.fingerprint()
        if self._draining:
            self._sink.rejected("draining")
            raise AdmissionError("draining", "service is draining; retry elsewhere")

        job = self._jobs.get(fp)
        if job is None:
            payload = await asyncio.get_running_loop().run_in_executor(
                self._executor, partial(self._store.get, cell.key(), kind=CELL_KIND)
            )
            summary = payload.get("summary") if isinstance(payload, dict) else None
            if isinstance(summary, dict):
                return self._finish(fp, "hit", summary, None, start)
            # The probe awaited; a duplicate may have queued meanwhile.
            job = self._jobs.get(fp)

        if job is not None:
            self._sink.coalesced()
            settled = await asyncio.shield(job.future)
            status = "coalesced" if settled.error is None else "error"
            return self._finish(fp, status, settled.summary, settled.error, start)

        if len(self._heap) >= self._max_queue:
            self._sink.rejected("queue_full")
            raise AdmissionError(
                "queue_full",
                f"simulation queue is full ({self._max_queue} cells); retry later",
            )
        loop = asyncio.get_running_loop()
        job = _Job(cell, loop.create_future())
        self._jobs[fp] = job
        self._idle.clear()
        self._seq += 1
        heapq.heappush(self._heap, (-cell.priority, self._seq, job))
        self._wakeup.set()
        settled = await asyncio.shield(job.future)
        status = "computed" if settled.error is None else "error"
        return self._finish(fp, status, settled.summary, settled.error, start)

    def _finish(
        self,
        fp: str,
        status: str,
        summary: Optional[Dict[str, Any]],
        error: Optional[str],
        start: float,
    ) -> CellOutcome:
        latency = time.monotonic() - start
        self._sink.cell_done(status)
        self._sink.observe_latency("simulation", latency)
        return CellOutcome(fp, status, summary, error, latency)

    # -- workers ------------------------------------------------------------

    def _pop_batch(self) -> List[_Job]:
        batch: List[_Job] = []
        while self._heap and len(batch) < self._batch_max:
            batch.append(heapq.heappop(self._heap)[2])
        return batch

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            batch = self._pop_batch()
            if not batch:
                self._wakeup.clear()
                continue
            requests = [job.cell.request for job in batch]
            try:
                results = await loop.run_in_executor(
                    self._executor,
                    partial(
                        run_cells,
                        requests,
                        cache=self._store,
                        workers=self._cell_workers,
                        vectorize="auto",
                    ),
                )
                # summary_to_payload is the exact shape the store persists,
                # so a freshly computed response is byte-identical to a later
                # cache-hit response for the same cell.
                settled = [
                    _Settled(
                        None
                        if r.summary is None
                        else dict(summary_to_payload(r.summary, None)["summary"]),
                        r.error,
                    )
                    for r in results
                ]
            except Exception as exc:  # executor failure: fail the whole batch
                settled = [
                    _Settled(None, f"{type(exc).__name__}: {exc}") for _ in batch
                ]
            for job, outcome in zip(batch, settled):
                self._jobs.pop(job.cell.fingerprint(), None)
                if not job.future.done():
                    job.future.set_result(outcome)
            if not self._jobs:
                self._idle.set()
