"""The simulation lane: cache-first, coalescing, priority-batched.

Every simulation cell a client POSTs flows through one
:class:`SimulationLane`:

1. **Cache probe** — ``store.get`` runs on the executor (file I/O off the
   event loop); a hit answers immediately with the cached summary.
2. **Coalescing** — cells are identified by their canonical key
   fingerprint; a second request for an in-flight fingerprint attaches to
   the first one's future instead of queueing again, so N identical sweeps
   cost one engine run.  The in-flight table is re-checked *after* the
   cache probe's await, closing the window where two misses for the same
   cell interleave on the loop.
3. **Admission** — a bounded priority queue; when ``max_queue`` cells are
   already waiting the submit fails with :class:`AdmissionError`
   (HTTP 503), which is what keeps a paper-scale grid from buffering
   unboundedly instead of pushing back.
4. **Batched compute** — lane workers pop up to ``batch_max`` cells in
   ``(-priority, arrival)`` order and run them through
   :func:`repro.experiments.parallel.run_cells` on the executor with the
   shared store as cache, so results are written back through the same
   content-addressed path every other runner uses.

When the lane is given a :class:`~repro.store.claims.ClaimRegistry`,
coalescing extends **across processes**: a miss claims its fingerprint
before queueing, so two service instances behind one store agree on which
one computes each cold cell.  The loser polls the store until the winner's
put lands (reported as ``"coalesced"``, same as in-process attachment) —
or until the winner dies, its claim goes stale, and the loser steals the
cell.  Claimed cells heartbeat while the engine batch runs and are
journaled ``claimed → computed → flushed`` when a
:class:`~repro.store.journal.Journal` is attached, which is what lets a
restarted process answer ``/jobs/<id>`` for sweeps it never saw.

The lane is single-loop asyncio plus a thread executor; the only
thread-shared objects are the store (internally locked), the claim
registry and journal (store-lock serialized), and the
:class:`~repro.serve.telemetry.ServiceSink` (internally locked).
"""

from __future__ import annotations

import asyncio
import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.parallel import CellResult, run_cells
from repro.serve.protocol import CellSpec
from repro.serve.telemetry import ServiceSink
from repro.store.cache import ResultStore
from repro.store.cells import CELL_KIND, summary_to_payload
from repro.store.claims import ClaimRegistry
from repro.store.journal import Journal
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["AdmissionError", "CellOutcome", "SimulationLane"]


class AdmissionError(RuntimeError):
    """The lane refused a cell; ``reason`` picks the HTTP status."""

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


class CellOutcome:
    """Terminal result of one submitted cell, as seen by one requester.

    ``status`` is ``"hit"`` (served from cache), ``"computed"`` (this
    request triggered the engine run), ``"coalesced"`` (attached to another
    request's run) or ``"error"``; ``latency_s`` is *this requester's* wall
    wait, so coalesced requesters report their own latency even though the
    engine ran once.
    """

    __slots__ = ("fingerprint", "status", "summary", "error", "latency_s")

    def __init__(
        self,
        fingerprint: str,
        status: str,
        summary: Optional[Dict[str, Any]],
        error: Optional[str],
        latency_s: float,
    ) -> None:
        self.fingerprint = fingerprint
        self.status = status
        self.summary = summary
        self.error = error
        self.latency_s = latency_s

    def payload(self) -> Dict[str, Any]:
        """JSON-ready response body for this outcome."""
        return {
            "fingerprint": self.fingerprint,
            "status": self.status,
            "summary": self.summary,
            "error": self.error,
            "latency_s": self.latency_s,
        }


class _Settled:
    """What a finished engine run hands every attached requester."""

    __slots__ = ("summary", "error")

    def __init__(self, summary: Optional[Dict[str, Any]], error: Optional[str]) -> None:
        self.summary = summary
        self.error = error


class _Job:
    """One queued-or-running cell: the spec plus the shared future.

    ``claimed`` marks jobs whose fingerprint this process holds a
    cross-process claim on; the worker that settles the job must journal
    and release it.
    """

    __slots__ = ("cell", "future", "claimed")

    def __init__(
        self,
        cell: CellSpec,
        future: "asyncio.Future[_Settled]",
        *,
        claimed: bool = False,
    ) -> None:
        self.cell = cell
        self.future = future
        self.claimed = claimed


class SimulationLane:
    """The bounded, coalescing, priority-ordered simulation queue."""

    def __init__(
        self,
        store: ResultStore,
        sink: ServiceSink,
        executor: ThreadPoolExecutor,
        *,
        workers: int = 2,
        max_queue: int = 64,
        batch_max: int = 8,
        cell_workers: int = 1,
        claims: Optional[ClaimRegistry] = None,
        journal: Optional[Journal] = None,
        claim_poll: float = 0.05,
    ) -> None:
        self._store = store
        self._sink = sink
        self._executor = executor
        self._workers = check_positive_int("workers", workers)
        self._max_queue = check_positive_int("max_queue", max_queue)
        self._batch_max = check_positive_int("batch_max", batch_max)
        self._cell_workers = check_positive_int("cell_workers", cell_workers)
        self._claims = claims
        self._journal = journal
        self._claim_poll = check_positive("claim_poll", claim_poll)
        self._jobs: Dict[str, _Job] = {}
        self._heap: List[Tuple[int, int, _Job]] = []
        self._seq = 0
        self._draining = False
        self._wakeup = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._tasks: List["asyncio.Task[None]"] = []

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the lane's worker tasks (idempotent)."""
        if self._tasks:
            return
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._worker()) for _ in range(self._workers)
        ]

    async def drain(self) -> None:
        """Stop admitting, wait for every in-flight cell, stop the workers."""
        self._draining = True
        await self._idle.wait()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:  # repro: noqa[R-SILENT]
                pass  # the cancellation IS the outcome we asked for
        self._tasks = []

    @property
    def queue_depth(self) -> int:
        """Cells admitted but not yet picked up by a worker."""
        return len(self._heap)

    @property
    def in_flight(self) -> int:
        """Cells admitted and not yet settled (queued + running)."""
        return len(self._jobs)

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun; submits are rejected."""
        return self._draining

    # -- submission ---------------------------------------------------------

    async def submit(self, cell: CellSpec) -> CellOutcome:
        """Resolve one cell: cache hit, coalesce, claim, or queue for compute.

        Raises :class:`AdmissionError` when draining or when the queue is
        full; every other failure settles into an ``"error"`` outcome so
        one bad cell in a sweep doesn't poison its siblings.
        """
        start = time.monotonic()
        fp = cell.fingerprint()
        if self._draining:
            self._sink.rejected("draining")
            raise AdmissionError("draining", "service is draining; retry elsewhere")

        job = self._jobs.get(fp)
        if job is None:
            summary = await self._probe(cell)
            if summary is not None:
                return self._finish(fp, "hit", summary, None, start)
            # The probe awaited; a duplicate may have queued meanwhile.
            job = self._jobs.get(fp)

        if job is not None:
            return await self._attach(job, fp, start)

        claimed = False
        if self._claims is not None:
            resolved = await self._acquire_claim(cell, fp, start)
            if resolved is not None:
                return resolved
            claimed = True

        loop = asyncio.get_running_loop()
        if len(self._heap) >= self._max_queue:
            if claimed and self._claims is not None:
                # Give the cell back before refusing, so a peer (or a
                # retry) can claim it instead of waiting out our staleness.
                await loop.run_in_executor(self._executor, self._claims.release, fp)
            self._sink.rejected("queue_full")
            raise AdmissionError(
                "queue_full",
                f"simulation queue is full ({self._max_queue} cells); retry later",
            )
        job = _Job(cell, loop.create_future(), claimed=claimed)
        self._jobs[fp] = job
        self._idle.clear()
        self._seq += 1
        heapq.heappush(self._heap, (-cell.priority, self._seq, job))
        self._wakeup.set()
        if claimed and self._claims is not None and self._journal is not None:
            await loop.run_in_executor(
                self._executor,
                partial(self._journal.append, "claimed", fp, owner=self._claims.owner),
            )
        settled = await asyncio.shield(job.future)
        status = "computed" if settled.error is None else "error"
        return self._finish(fp, status, settled.summary, settled.error, start)

    async def _probe(self, cell: CellSpec) -> Optional[Dict[str, Any]]:
        """Cache lookup on the executor; the cached summary or ``None``."""
        payload = await asyncio.get_running_loop().run_in_executor(
            self._executor, partial(self._store.get, cell.key(), kind=CELL_KIND)
        )
        summary = payload.get("summary") if isinstance(payload, dict) else None
        return summary if isinstance(summary, dict) else None

    async def _attach(self, job: _Job, fp: str, start: float) -> CellOutcome:
        """Ride an in-flight local job to its settled outcome."""
        self._sink.coalesced()
        settled = await asyncio.shield(job.future)
        status = "coalesced" if settled.error is None else "error"
        return self._finish(fp, status, settled.summary, settled.error, start)

    async def _acquire_claim(
        self, cell: CellSpec, fp: str, start: float
    ) -> Optional[CellOutcome]:
        """Win the cross-process claim on *fp*, or ride someone else's run.

        Returns ``None`` once this process holds the claim — the caller
        must queue the cell — or a finished outcome when the cell resolved
        elsewhere while we waited: ``"coalesced"`` from the store when a
        peer process's put landed, or attached to a sibling request that
        claimed-and-queued during one of our awaits.  A peer that dies
        mid-cell stops heartbeating; ``try_claim`` then steals the stale
        claim on a later iteration of the poll loop.
        """
        assert self._claims is not None
        loop = asyncio.get_running_loop()
        while True:
            won = await loop.run_in_executor(self._executor, self._claims.try_claim, fp)
            # The executor hop awaited; a sibling may have queued the cell
            # (and, sharing our owner token, idempotently "won" the claim
            # too) — attach rather than queue a duplicate.
            job = self._jobs.get(fp)
            if job is not None:
                return await self._attach(job, fp, start)
            if won:
                # A peer may have computed-and-released this cell between
                # our cache probe and the claim win; re-check before
                # queueing a redundant engine batch.
                summary = None
                if await loop.run_in_executor(
                    self._executor, self._store.has_fingerprint, fp
                ):
                    summary = await self._probe(cell)
                if summary is not None:
                    await loop.run_in_executor(self._executor, self._claims.release, fp)
                    return self._finish(fp, "hit", summary, None, start)
                job = self._jobs.get(fp)  # those probes awaited; re-check
                if job is not None:
                    return await self._attach(job, fp, start)
                return None
            entry_present = await loop.run_in_executor(
                self._executor, self._store.has_fingerprint, fp
            )
            if entry_present:
                summary = await self._probe(cell)
                if summary is not None:
                    self._sink.coalesced()
                    return self._finish(fp, "coalesced", summary, None, start)
            if self._draining:
                self._sink.rejected("draining")
                raise AdmissionError("draining", "service is draining; retry elsewhere")
            await asyncio.sleep(self._claim_poll)

    def _finish(
        self,
        fp: str,
        status: str,
        summary: Optional[Dict[str, Any]],
        error: Optional[str],
        start: float,
    ) -> CellOutcome:
        latency = time.monotonic() - start
        self._sink.cell_done(status)
        self._sink.observe_latency("simulation", latency)
        return CellOutcome(fp, status, summary, error, latency)

    # -- workers ------------------------------------------------------------

    def _pop_batch(self) -> List[_Job]:
        batch: List[_Job] = []
        while self._heap and len(batch) < self._batch_max:
            batch.append(heapq.heappop(self._heap)[2])
        return batch

    def _run_batch(self, requests: List[Any], claimed_fps: List[str]) -> List[CellResult]:
        """One engine batch on the executor, heartbeating claimed cells."""
        if self._claims is not None and claimed_fps:
            with self._claims.ticker(claimed_fps):
                return run_cells(
                    requests,
                    cache=self._store,
                    workers=self._cell_workers,
                    vectorize="auto",
                )
        return run_cells(
            requests, cache=self._store, workers=self._cell_workers, vectorize="auto"
        )

    def _finalize_claims(self, batch: List[_Job], settled: List[_Settled]) -> None:
        """Journal and release every claimed cell of a finished batch.

        Runs on the executor.  Successful cells journal ``computed`` and
        (once the store entry is visible) ``flushed``; failed cells just
        release, leaving the cell claimable by anyone.
        """
        if self._claims is None:
            return
        for job, outcome in zip(batch, settled):
            if not job.claimed:
                continue
            fp = job.cell.fingerprint()
            if self._journal is not None and outcome.error is None:
                self._journal.append("computed", fp, owner=self._claims.owner)
                if self._store.has_fingerprint(fp):
                    self._journal.append("flushed", fp, owner=self._claims.owner)
            self._claims.release(fp)

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            batch = self._pop_batch()
            if not batch:
                self._wakeup.clear()
                continue
            requests = [job.cell.request for job in batch]
            claimed_fps = [job.cell.fingerprint() for job in batch if job.claimed]
            try:
                results = await loop.run_in_executor(
                    self._executor, partial(self._run_batch, requests, claimed_fps)
                )
                # summary_to_payload is the exact shape the store persists,
                # so a freshly computed response is byte-identical to a later
                # cache-hit response for the same cell.
                settled = [
                    _Settled(
                        None
                        if r.summary is None
                        else dict(summary_to_payload(r.summary, None)["summary"]),
                        r.error,
                    )
                    for r in results
                ]
            except Exception as exc:  # executor failure: fail the whole batch
                settled = [
                    _Settled(None, f"{type(exc).__name__}: {exc}") for _ in batch
                ]
            if claimed_fps:
                await loop.run_in_executor(
                    self._executor, partial(self._finalize_claims, batch, settled)
                )
            for job, outcome in zip(batch, settled):
                self._jobs.pop(job.cell.fingerprint(), None)
                if not job.future.done():
                    job.future.set_result(outcome)
            if not self._jobs:
                self._idle.set()
