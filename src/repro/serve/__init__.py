"""Async sweep service over the result store, built for heavy traffic.

``repro-serve`` turns the repo from a batch tool into a long-running
service: many clients concurrently POST sweep cells and closed-form
analytical queries, cache hits answer instantly from the shared
:class:`~repro.store.cache.ResultStore`, duplicate in-flight cells
coalesce onto one engine run, and misses are batched through the same
parallel runner the CLI uses — all stdlib asyncio, no third-party
dependencies.

Layered API:

* :mod:`repro.serve.protocol` — the JSON wire schema
  (``repro.serve/1``): cell specs canonicalized through
  :func:`repro.store.cells.replicate_cell_key`, analytical queries over
  the closed forms of :mod:`repro.core.analysis`;
* :mod:`repro.serve.quotas` — per-client token buckets, one budget per
  ``(client, lane)``;
* :mod:`repro.serve.telemetry` — the :mod:`repro.obs`-backed
  :class:`~repro.serve.telemetry.ServiceSink` behind ``/metrics``;
* :mod:`repro.serve.queueing` — the coalescing, priority-ordered,
  bounded simulation lane;
* :mod:`repro.serve.service` — the asyncio HTTP front, SSE streaming and
  graceful SIGTERM drain;
* :mod:`repro.serve.client` — the blocking Python client and the
  in-process :class:`~repro.serve.client.ServerThread` test harness;
* :mod:`repro.serve.cli` — the ``repro-serve`` entry point.

Two priority classes hold by construction: analytical queries are
evaluated inline on the event loop and never enter the simulation lane,
so a saturated simulation queue cannot delay them.
"""

from __future__ import annotations

from repro.serve.client import ServeClient, ServeError, ServerThread, wait_until_healthy
from repro.serve.protocol import SERVE_SCHEMA, AnalyticalQuery, CellSpec, ProtocolError
from repro.serve.queueing import AdmissionError, CellOutcome, SimulationLane
from repro.serve.quotas import QuotaRegistry, TokenBucket
from repro.serve.service import ServeConfig, SweepService, run_server
from repro.serve.telemetry import ServiceSink

__all__ = [
    "SERVE_SCHEMA",
    "AdmissionError",
    "AnalyticalQuery",
    "CellOutcome",
    "CellSpec",
    "ProtocolError",
    "QuotaRegistry",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "ServiceSink",
    "SimulationLane",
    "SweepService",
    "TokenBucket",
    "run_server",
    "wait_until_healthy",
]
