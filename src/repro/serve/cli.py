"""``repro-serve`` — boot the async sweep service from the command line.

Every flag maps one-to-one onto a :class:`~repro.serve.service.ServeConfig`
field; defaults match the config's.  ``--port 0`` binds an ephemeral port
and prints it in the ``listening on`` line, which is how the CI smoke
harness discovers the address.  ``--quota-burst 0`` disables per-client
quotas entirely (useful for trusted single-tenant runs).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.serve.service import ServeConfig, run_server

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``repro-serve`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve cached/computed simulation cells and closed-form "
            "analytical queries over JSON HTTP."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8321, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--store", default="serve-cache", help="result-store root directory"
    )
    parser.add_argument(
        "--sim-workers", type=int, default=2, help="simulation-lane worker tasks"
    )
    parser.add_argument(
        "--max-queue", type=int, default=64, help="max queued cells before 503"
    )
    parser.add_argument(
        "--batch-max", type=int, default=8, help="max cells per engine batch"
    )
    parser.add_argument(
        "--cell-workers",
        type=int,
        default=1,
        help="process-pool workers per engine batch",
    )
    parser.add_argument(
        "--quota-rate",
        type=float,
        default=20.0,
        help="token-bucket refill rate per client per lane (tokens/s)",
    )
    parser.add_argument(
        "--quota-burst",
        type=float,
        default=40.0,
        help="token-bucket capacity per client per lane (0 = unlimited)",
    )
    parser.add_argument(
        "--max-n", type=int, default=512, help="largest accepted cell size n"
    )
    parser.add_argument(
        "--max-reps", type=int, default=256, help="largest accepted replicate count"
    )
    parser.add_argument(
        "--max-p", type=int, default=1024, help="largest accepted worker count"
    )
    parser.add_argument(
        "--max-cells", type=int, default=256, help="largest accepted sweep"
    )
    parser.add_argument(
        "--claim-stale-after",
        type=float,
        default=30.0,
        metavar="S",
        help=(
            "cross-process claim heartbeat staleness in seconds; a peer may "
            "steal a cell whose claim is older (0 = disable claims)"
        ),
    )
    parser.add_argument(
        "--claim-poll",
        type=float,
        default=0.05,
        metavar="S",
        help="poll interval while waiting on a peer process's claimed cell",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: build the config, serve until SIGTERM/SIGINT."""
    args = build_parser().parse_args(argv)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        store_root=args.store,
        lane_workers=args.sim_workers,
        max_queue=args.max_queue,
        batch_max=args.batch_max,
        cell_workers=args.cell_workers,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        max_n=args.max_n,
        max_reps=args.max_reps,
        max_p=args.max_p,
        max_cells=args.max_cells,
        claim_stale_after=args.claim_stale_after,
        claim_poll=args.claim_poll,
    )
    return run_server(config)
