"""Blocking client for ``repro-serve`` plus an in-process server harness.

:class:`ServeClient` is the supported way to talk to the service from
Python — tests, the ``serve_roundtrip`` bench workload and the CI smoke
harness all go through it, so its request shapes double as executable
documentation of the wire protocol.  It is plain :mod:`http.client`
(stdlib only, one connection per request, matching the server's
``Connection: close``); errors surface as :class:`ServeError` carrying the
HTTP status and decoded body.

:class:`ServerThread` boots a full :class:`~repro.serve.service.SweepService`
on a private event loop in a daemon thread — an ephemeral port and a real
TCP socket, no mocking — so a test or bench run can exercise the exact
code path production traffic takes and still tear down in milliseconds.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.serve.service import ServeConfig, SweepService

__all__ = ["ServeClient", "ServeError", "ServerThread", "wait_until_healthy"]


class ServeError(RuntimeError):
    """A non-2xx response: HTTP ``status`` plus the decoded JSON ``payload``."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServeClient:
    """Thin blocking wrapper over the service's routes."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str = "anonymous",
        timeout: float = 30.0,
    ) -> None:
        self.host = str(host)
        self.port = int(port)
        self.client_id = str(client_id)
        self.timeout = float(timeout)

    # -- plumbing -----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        conn = self._connect()
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(
                method, path, body=payload, headers={"X-Repro-Client": self.client_id}
            )
            response = conn.getresponse()
            decoded = _decode_json(response.read())
            if response.status >= 400:
                raise ServeError(response.status, decoded)
            return decoded
        finally:
            conn.close()

    # -- routes -------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>`` — sweep recovery status from the journal."""
        return self._request("GET", f"/jobs/{job_id}")

    def analytical(self, query: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/analytical`` — closed-form fast path."""
        return self._request("POST", "/v1/analytical", query)

    def cell(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/cell`` — one simulation cell through the lane."""
        return self._request("POST", "/v1/cell", spec)

    def sweep(self, cells: List[Dict[str, Any]]) -> Dict[str, Any]:
        """``POST /v1/sweep`` (buffered): all outcomes in request order."""
        return self._request("POST", "/v1/sweep", {"cells": cells})

    def sweep_stream(
        self, cells: List[Dict[str, Any]]
    ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """``POST /v1/sweep`` with ``"stream": true``: yields SSE events.

        Yields ``(event, data)`` pairs — ``accepted``, then one ``cell``
        per finished cell in completion order, then ``done``.
        """
        conn = self._connect()
        try:
            conn.request(
                "POST",
                "/v1/sweep",
                body=json.dumps({"cells": cells, "stream": True}),
                headers={"X-Repro-Client": self.client_id},
            )
            response = conn.getresponse()
            if response.status >= 400:
                raise ServeError(response.status, _decode_json(response.read()))
            event: Optional[str] = None
            while True:
                line = response.readline()
                if not line:
                    break
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith("event: "):
                    event = text[len("event: ") :]
                elif text.startswith("data: ") and event is not None:
                    yield event, _decode_json(text[len("data: ") :].encode("utf-8"))
                    if event == "done":
                        break
                    event = None
        finally:
            conn.close()


def _decode_json(raw: bytes) -> Dict[str, Any]:
    try:
        decoded = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(502, {"error": f"undecodable response: {exc}"}) from exc
    if not isinstance(decoded, dict):
        raise ServeError(502, {"error": f"expected a JSON object, got {decoded!r}"})
    return decoded


def wait_until_healthy(
    host: str, port: int, *, timeout: float = 10.0, interval: float = 0.05
) -> Dict[str, Any]:
    """Poll ``/healthz`` until the service answers; returns the health body.

    Raises :class:`TimeoutError` if the service never comes up — used by
    the smoke harness and tests between boot and first real request.
    """
    client = ServeClient(host, port, timeout=max(1.0, interval * 10))
    deadline = time.monotonic() + float(timeout)
    while True:
        try:
            return client.healthz()
        except (OSError, ServeError):
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"service at {host}:{port} not healthy after {timeout}s"
                ) from None
            time.sleep(interval)


class ServerThread:
    """A real :class:`SweepService` on a private loop in a daemon thread.

    ``with ServerThread(config) as (host, port): ...`` boots the full
    service (ephemeral port when ``config.port == 0``), hands back the
    bound address, and on exit performs the same graceful drain a SIGTERM
    would — so everything the tests assert about drain behavior holds for
    production shutdown too.
    """

    def __init__(self, config: ServeConfig, *, clock: Optional[Any] = None) -> None:
        self.config = config
        self._clock = clock
        self.service: Optional[SweepService] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._loop: Optional[Any] = None
        self._boot_error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        """Boot the server thread; blocks until the socket is bound."""
        if self._thread is not None:
            raise RuntimeError("ServerThread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-test", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise TimeoutError("server thread failed to come up within 30s")
        if self._boot_error is not None:
            raise RuntimeError("server thread failed to boot") from self._boot_error
        assert self._address is not None
        return self._address

    def _run(self) -> None:
        import asyncio

        async def _amain() -> None:
            service = SweepService(self.config, clock=self._clock)
            self.service = service
            try:
                self._address = await service.start()
                self._loop = asyncio.get_running_loop()
            finally:
                self._ready.set()
            await service.serve_forever(handle_signals=False)

        try:
            asyncio.run(_amain())
        except BaseException as exc:  # surfaced to start()'s caller
            self._boot_error = exc
            self._ready.set()

    def stop(self) -> None:
        """Trigger the graceful drain and wait for the thread to exit."""
        if self._thread is None:
            return
        if self._loop is not None and self.service is not None:
            self._loop.call_soon_threadsafe(self.service.request_stop)
        self._thread.join(timeout=30.0)
        if self._thread.is_alive():  # pragma: no cover - drain hang is a bug
            raise RuntimeError("server thread did not drain within 30s")
        self._thread = None

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
