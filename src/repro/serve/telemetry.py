"""Service metrics for ``repro-serve``, built on :mod:`repro.obs`.

One :class:`ServiceSink` instance aggregates everything ``/metrics``
reports: request and rejection counters per lane, cache traffic forwarded
from the shared :class:`~repro.store.cache.ResultStore` (the sink plugs in
as the store's ``MetricsSink``), the in-flight coalesce counter, and a
request-latency histogram per lane/status from which p50/p99 are derived.

Unlike the engine sinks, service events arrive from *many* threads — the
asyncio loop observes latencies while executor threads emit store events —
so every mutation and the snapshot hold one internal lock.  Families reuse
the ``(label, worker, phase)`` key type of :mod:`repro.obs.metrics` with
the label dimension carrying the lane/status/reason and the sentinel
values for the unused dimensions.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Mapping, Optional

from repro.obs.metrics import ALL_PHASES, ALL_WORKERS, LATENCY_BUCKETS, MetricKey, Metrics
from repro.obs.sink import STORE_EVENTS, MetricsSink

__all__ = ["ServiceSink"]

#: Lane names used by the service.
_LANES = ("analytical", "simulation")


def _key(label: str) -> MetricKey:
    return (label, ALL_WORKERS, ALL_PHASES)


class ServiceSink(MetricsSink):
    """Thread-safe accumulator behind the service's ``/metrics`` endpoint.

    Families (all keyed on the label dimension):

    ==============================  ===========================================
    ``serve_requests`` (counter)    accepted requests per lane
    ``serve_rejected`` (counter)    rejections per reason (``quota``,
                                    ``queue_full``, ``draining``, ``invalid``)
    ``serve_coalesced`` (counter)   cells that joined an in-flight computation
    ``serve_cells`` (counter)       finished cells per terminal status
                                    (``hit``/``computed``/``coalesced``/``error``)
    ``store_<event>`` (counter)     store traffic forwarded by the store,
                                    claim registry and journal, keyed by
                                    entry kind (see
                                    :data:`~repro.obs.sink.STORE_EVENTS`)
    ``serve_latency`` (histogram)   request latency seconds per lane
                                    (:data:`~repro.obs.metrics.LATENCY_BUCKETS`)
    ==============================  ===========================================
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics = Metrics()

    # -- service-side hooks -------------------------------------------------

    def request(self, lane: str) -> None:
        """Count one accepted request on *lane*."""
        with self._lock:
            self._metrics.counter("serve_requests").inc(_key(lane))

    def rejected(self, reason: str) -> None:
        """Count one rejected request (*reason* names the admission gate)."""
        with self._lock:
            self._metrics.counter("serve_rejected").inc(_key(reason))

    def coalesced(self) -> None:
        """Count one cell that attached to an already in-flight duplicate."""
        with self._lock:
            self._metrics.counter("serve_coalesced").inc(_key("simulation"))

    def cell_done(self, status: str) -> None:
        """Count one finished cell by terminal *status*."""
        with self._lock:
            self._metrics.counter("serve_cells").inc(_key(status))

    def observe_latency(self, lane: str, seconds: float) -> None:
        """Record one request's wall latency on *lane*."""
        with self._lock:
            self._metrics.histogram("serve_latency", LATENCY_BUCKETS).observe(
                _key(lane), seconds
            )

    # -- MetricsSink hooks --------------------------------------------------

    def on_store_event(self, kind: str, event: str) -> None:
        """Forwarded store/claim/journal traffic (runs on executor threads)."""
        if event not in STORE_EVENTS:
            raise ValueError(f"unknown store event {event!r}")
        with self._lock:
            self._metrics.counter(f"store_{event}").inc(_key(str(kind)))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every family (consistent under the lock)."""
        with self._lock:
            return self._metrics.to_dict()

    def absorb_snapshot(self, raw: Mapping[str, Any]) -> None:
        """Fold another sink's snapshot in (used by tests and reports)."""
        other = Metrics.from_dict(raw["metrics"] if "metrics" in raw else raw)
        with self._lock:
            self._metrics.merge(other)

    # -- derived numbers for /metrics ---------------------------------------

    def counter_value(self, family: str, label: str) -> int:
        """One counter cell's current value."""
        with self._lock:
            return self._metrics.counter(family).get(_key(label))

    def hit_rate(self) -> Optional[float]:
        """Cache hits over lookups across all entry kinds, ``None`` pre-traffic."""
        with self._lock:
            hits = self._metrics.counter("store_hit").total()
            misses = self._metrics.counter("store_miss").total()
        lookups = hits + misses
        if lookups == 0:
            return None
        return hits / lookups

    def latency_quantiles(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Per-lane ``{"p50": ..., "p99": ...}`` from the latency histogram."""
        out: Dict[str, Dict[str, Optional[float]]] = {}
        with self._lock:
            hist = self._metrics.histogram("serve_latency", LATENCY_BUCKETS)
            for lane in _LANES:
                out[lane] = {
                    "p50": hist.quantile(_key(lane), 0.5),
                    "p99": hist.quantile(_key(lane), 0.99),
                }
        return out
