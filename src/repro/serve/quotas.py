"""Per-client token-bucket quotas for the sweep service.

The service's contract is that a flood of cheap analytical queries must
never starve the simulation lane and vice versa, and that no single client
may monopolize either lane.  Both properties are enforced *before*
queueing: every request first passes through a :class:`QuotaRegistry`
keyed ``(client, lane)``, so the two lanes have independent budgets and a
client exhausting its simulation quota can still ask analytical questions.

Buckets follow the classic token-bucket scheme: capacity ``burst`` tokens,
refilled continuously at ``rate`` tokens/second; a request costs one token
(a sweep costs one per cell).  An empty bucket maps to HTTP 429.

The clock is injectable so tests drive refill deterministically; the
default is ``time.monotonic`` (``repro.serve`` is a sanctioned wall-clock
boundary — see ``repro.analyze.taint.sanitized_modules``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Tuple

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["QuotaRegistry", "TokenBucket"]


class TokenBucket:
    """One client/lane budget: ``capacity`` tokens refilled at ``rate``/s."""

    __slots__ = ("capacity", "rate", "tokens", "updated")

    def __init__(self, capacity: float, rate: float, *, now: float) -> None:
        self.capacity = check_positive("capacity", capacity)
        self.rate = check_nonnegative("rate", rate)
        self.tokens = self.capacity
        self.updated = float(now)

    def try_take(self, cost: float, *, now: float) -> bool:
        """Spend *cost* tokens if the bucket (refilled to *now*) holds them."""
        elapsed = max(0.0, float(now) - self.updated)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self.updated = float(now)
        if self.tokens + 1e-12 < cost:
            return False
        self.tokens -= cost
        return True


class QuotaRegistry:
    """Token buckets per ``(client, lane)``, created lazily on first use.

    ``rate``/``burst`` apply to every bucket (one policy, many clients);
    ``rate=0`` with a finite burst means a hard per-client request budget,
    while ``unlimited=True`` disables quota checks entirely (the CLI maps
    ``--quota-rate 0 --quota-burst 0`` to it).  The registry is
    thread-safe and bounds its memory: at most ``max_clients`` buckets are
    kept, evicting the least recently *checked* — an evicted client simply
    starts over with a full bucket.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 10_000,
    ) -> None:
        self.rate = check_nonnegative("rate", rate)
        self.unlimited = burst == 0
        self.burst = 0.0 if self.unlimited else check_positive("burst", burst)
        self._clock = clock
        self._max_clients = int(check_positive("max_clients", max_clients))
        self._buckets: "OrderedDict[Tuple[str, str], TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()

    def allow(self, client: str, lane: str, cost: float = 1.0) -> bool:
        """True when *client* may spend *cost* tokens on *lane* right now."""
        if self.unlimited:
            return True
        cost = check_positive("cost", cost)
        key = (str(client), str(lane))
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(self.burst, self.rate, now=now)
                self._buckets[key] = bucket
                while len(self._buckets) > self._max_clients:
                    self._buckets.popitem(last=False)
            self._buckets.move_to_end(key)
            return bucket.try_take(cost, now=now)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)
