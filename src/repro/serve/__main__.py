"""``python -m repro.serve`` — alias for the ``repro-serve`` CLI."""

import sys

from repro.serve.cli import main

if __name__ == "__main__":  # pragma: no cover - thin alias
    sys.exit(main())
