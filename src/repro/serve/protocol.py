"""Request validation and canonicalization for the sweep service.

Every request body the service accepts is parsed here into a typed spec
*before* any queueing or computation happens, so a malformed payload costs
one JSON parse and nothing else.  The two request families mirror the
paper's own cost split:

* :class:`AnalyticalQuery` — closed-form math (Theorem-6 total ratios, the
  optimal and speed-agnostic β, communication lower bounds).  Evaluated
  inline by :meth:`AnalyticalQuery.evaluate`; microseconds of numpy.
* :class:`CellSpec` — one replicate cell of a simulation grid.  Its
  canonical cache key is the existing :func:`repro.store.cells.replicate_cell_key`
  schema — the *same* key the sweep runners use — so a cell computed by
  ``repro-experiments run --cache`` is a serve cache hit and vice versa.

Canonicalization is what makes coalescing sound: two JSON bodies that
describe the same cell (different key order, ``5`` vs ``5.0`` never allowed,
defaulted fields spelled out or omitted) produce the identical
:meth:`CellSpec.fingerprint`, so the queue can collapse them onto one
in-flight computation.

All parse errors raise :class:`ProtocolError`, which the HTTP layer maps
to a 400 response carrying the message.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.core.analysis import (
    agnostic_beta,
    lower_bound,
    matrix_total_ratio,
    optimal_matrix_beta,
    optimal_outer_beta,
    outer_total_ratio,
)
from repro.core.strategies.registry import make_strategy, strategy_names
from repro.experiments.parallel import (
    CellRequest,
    FixedPlatformSpec,
    HeterogeneityPlatformSpec,
    ScenarioPlatformSpec,
    StrategySpec,
    UniformPlatformSpec,
)
from repro.platform.platform import Platform
from repro.platform.speeds import SCENARIO_NAMES
from repro.store.fingerprint import fingerprint

__all__ = [
    "JOB_SCHEMA",
    "KERNELS",
    "PLATFORM_TYPES",
    "QUERY_KINDS",
    "SERVE_SCHEMA",
    "AnalyticalQuery",
    "CellSpec",
    "PlatformSpec",
    "ProtocolError",
    "parse_platform",
    "sweep_job_id",
]

#: Protocol schema tag, echoed by ``/healthz`` so clients can pin it.
SERVE_SCHEMA = "repro.serve/1"

#: Schema tag fingerprinted into sweep job ids (journal recovery keys).
JOB_SCHEMA = "repro.serve.job/1"

#: Supported platform spec types (the picklable factory specs of
#: :mod:`repro.experiments.parallel`).
PLATFORM_TYPES = ("uniform", "fixed", "heterogeneity", "scenario")

#: Supported analytical query kinds.
QUERY_KINDS = ("ratio", "optimal_beta", "agnostic_beta", "lower_bound")

#: The paper's two kernels.
KERNELS = ("outer", "matrix")

#: Any of the four picklable platform factory specs.
PlatformSpec = Union[
    UniformPlatformSpec, FixedPlatformSpec, HeterogeneityPlatformSpec, ScenarioPlatformSpec
]


class ProtocolError(ValueError):
    """A request body failed validation; maps to HTTP 400."""


def _require_mapping(raw: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(raw, Mapping):
        raise ProtocolError(f"{what} must be a JSON object, got {type(raw).__name__}")
    return raw


def _get_int(raw: Mapping[str, Any], field: str, *, minimum: int, maximum: int) -> int:
    value = raw.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {field!r} must be an integer, got {value!r}")
    if not minimum <= value <= maximum:
        raise ProtocolError(
            f"field {field!r} must lie in [{minimum}, {maximum}], got {value}"
        )
    return value


def _get_number(raw: Mapping[str, Any], field: str, default: float) -> float:
    value = raw.get(field, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"field {field!r} must be a number, got {value!r}")
    return float(value)


def parse_platform(raw: Any, *, max_p: int = 1024) -> PlatformSpec:
    """Parse a platform description into its picklable factory spec.

    Accepted shapes (``type`` selects the spec class)::

        {"type": "uniform", "p": 8, "low": 10, "high": 100}
        {"type": "fixed", "speeds": [70.5, 10.0, 15.2]}
        {"type": "heterogeneity", "p": 8, "h": 50}
        {"type": "scenario", "name": "many_small", "p": 8}

    ``low``/``high`` default to the paper's ``[10, 100]`` draw.
    """
    raw = _require_mapping(raw, "platform")
    ptype = raw.get("type")
    if ptype not in PLATFORM_TYPES:
        raise ProtocolError(
            f"platform type must be one of {list(PLATFORM_TYPES)}, got {ptype!r}"
        )
    try:
        if ptype == "uniform":
            return UniformPlatformSpec(
                _get_int(raw, "p", minimum=1, maximum=max_p),
                _get_number(raw, "low", 10.0),
                _get_number(raw, "high", 100.0),
            )
        if ptype == "fixed":
            speeds = raw.get("speeds")
            if not isinstance(speeds, list) or not speeds:
                raise ProtocolError("fixed platform needs a non-empty 'speeds' list")
            if len(speeds) > max_p:
                raise ProtocolError(f"'speeds' exceeds the {max_p}-worker limit")
            return FixedPlatformSpec([float(s) for s in speeds])
        if ptype == "heterogeneity":
            return HeterogeneityPlatformSpec(
                _get_int(raw, "p", minimum=1, maximum=max_p),
                _get_number(raw, "h", 0.0),
            )
        name = raw.get("name")
        if not isinstance(name, str):
            raise ProtocolError(
                f"scenario platform needs a 'name' from {sorted(SCENARIO_NAMES)}"
            )
        return ScenarioPlatformSpec(name, _get_int(raw, "p", minimum=1, maximum=max_p))
    except ProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid platform: {exc}") from exc


class CellSpec:
    """One validated simulation-grid cell, canonicalized for the store.

    Wraps a :class:`~repro.experiments.parallel.CellRequest` (the batch
    runner's unit of work) plus the service-level ``priority``.  The cache
    key is always built with ``metrics=False`` — the service never attaches
    per-repetition sinks, so every client asking for the same cell agrees
    on one fingerprint.
    """

    __slots__ = ("request", "priority", "_key", "_fingerprint")

    #: Priority bounds: higher runs earlier within the simulation lane.
    MIN_PRIORITY = 0
    MAX_PRIORITY = 9

    def __init__(self, request: CellRequest, *, priority: int = 0) -> None:
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ProtocolError(f"priority must be an integer, got {priority!r}")
        if not self.MIN_PRIORITY <= priority <= self.MAX_PRIORITY:
            raise ProtocolError(
                f"priority must lie in [{self.MIN_PRIORITY}, {self.MAX_PRIORITY}], "
                f"got {priority}"
            )
        self.request = request
        self.priority = priority
        key = request.key(metrics=False)
        if key is None:  # pragma: no cover - specs above always tokenize
            raise ProtocolError("cell is not cacheable; refusing to serve it")
        self._key: Dict[str, Any] = key
        self._fingerprint = fingerprint(key)

    @classmethod
    def parse(
        cls,
        raw: Any,
        *,
        max_n: int = 512,
        max_reps: int = 256,
        max_p: int = 1024,
    ) -> "CellSpec":
        """Validate one JSON cell description.

        Shape::

            {"strategy": "DynamicOuter", "n": 30, "reps": 5, "seed": 0,
             "platform": {"type": "uniform", "p": 8},
             "strategy_kwargs": {"beta": 0.4},     # optional
             "priority": 0}                        # optional, 0-9

        The ``max_*`` caps are the service's admission limits — a request
        over them is a 400, not a queued cell that exhausts the box.
        """
        raw = _require_mapping(raw, "cell")
        name = raw.get("strategy")
        known = strategy_names()
        if name not in known:
            raise ProtocolError(
                f"unknown strategy {name!r}; choose from {sorted(known)}"
            )
        n = _get_int(raw, "n", minimum=1, maximum=max_n)
        reps = _get_int(raw, "reps", minimum=1, maximum=max_reps)
        seed = _get_int({"seed": raw.get("seed", 0)}, "seed", minimum=0, maximum=2**63 - 1)
        kwargs = raw.get("strategy_kwargs", {})
        kwargs = dict(_require_mapping(kwargs, "strategy_kwargs"))
        if any(not isinstance(k, str) for k in kwargs):
            raise ProtocolError("strategy_kwargs keys must be strings")
        platform = parse_platform(raw.get("platform"), max_p=max_p)
        priority = raw.get("priority", 0)
        try:
            # Instantiate once now: StrategySpec defers kwargs validation to
            # factory time, and a bad kwarg must be a 400, not a queued cell
            # that errors in the engine.
            make_strategy(str(name), n, **kwargs)
            strategy = StrategySpec(str(name), n, **kwargs)
            request = CellRequest(strategy, platform, n, reps, seed=seed)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid cell: {exc}") from exc
        return cls(request, priority=priority)

    def key(self) -> Dict[str, Any]:
        """The cell's canonical cache key (``repro.store.cell/1`` schema)."""
        return dict(self._key)

    def fingerprint(self) -> str:
        """sha256 fingerprint of the canonical key — the coalescing identity."""
        return self._fingerprint

    def describe(self) -> Dict[str, Any]:
        """JSON echo of the canonical cell (returned in responses)."""
        return {
            "fingerprint": self._fingerprint,
            "key": self.key(),
            "priority": self.priority,
        }


class AnalyticalQuery:
    """One validated closed-form query (the analytical fast path).

    These are pure functions of ``(kernel, n, speeds)`` from
    :mod:`repro.core.analysis` — no simulation, no queueing, no cache.
    """

    __slots__ = ("query", "kernel", "n", "speeds", "p", "beta")

    def __init__(
        self,
        query: str,
        kernel: str,
        n: int,
        *,
        speeds: Optional[List[float]] = None,
        p: Optional[int] = None,
        beta: Optional[float] = None,
    ) -> None:
        if query not in QUERY_KINDS:
            raise ProtocolError(f"query must be one of {list(QUERY_KINDS)}, got {query!r}")
        if kernel not in KERNELS:
            raise ProtocolError(f"kernel must be one of {list(KERNELS)}, got {kernel!r}")
        if isinstance(n, bool) or not isinstance(n, int) or n < 1:
            raise ProtocolError(f"field 'n' must be a positive integer, got {n!r}")
        self.query = query
        self.kernel = kernel
        self.n = n
        self.speeds = speeds
        self.p = p
        self.beta = beta

    @classmethod
    def parse(cls, raw: Any, *, max_p: int = 1024) -> "AnalyticalQuery":
        """Validate one JSON analytical query.

        Shape::

            {"query": "ratio", "kernel": "outer", "n": 100,
             "speeds": [70, 10, 15], "beta": 0.4}       # beta optional
            {"query": "agnostic_beta", "kernel": "outer", "n": 100, "p": 8}
        """
        raw = _require_mapping(raw, "analytical query")
        query = raw.get("query")
        kernel = raw.get("kernel")
        if not isinstance(query, str) or not isinstance(kernel, str):
            raise ProtocolError("fields 'query' and 'kernel' must be strings")
        n = _get_int(raw, "n", minimum=1, maximum=10**9)
        beta: Optional[float] = None
        if raw.get("beta") is not None:
            beta = _get_number(raw, "beta", 0.0)
            if not beta > 0.0:
                raise ProtocolError(f"field 'beta' must be positive, got {beta}")
        speeds: Optional[List[float]] = None
        p: Optional[int] = None
        if query == "agnostic_beta":
            p = _get_int(raw, "p", minimum=1, maximum=max_p)
        else:
            raw_speeds = raw.get("speeds")
            if not isinstance(raw_speeds, list) or not raw_speeds:
                raise ProtocolError(f"query {query!r} needs a non-empty 'speeds' list")
            if len(raw_speeds) > max_p:
                raise ProtocolError(f"'speeds' exceeds the {max_p}-worker limit")
            try:
                speeds = [float(s) for s in raw_speeds]
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"invalid speeds: {exc}") from exc
        return cls(query, kernel, n, speeds=speeds, p=p, beta=beta)

    def _relative_speeds(self) -> np.ndarray:
        assert self.speeds is not None  # parse() guarantees it
        try:
            return Platform(np.asarray(self.speeds, dtype=np.float64)).relative_speeds
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid speeds: {exc}") from exc

    def evaluate(self) -> Dict[str, Any]:
        """Compute the query; returns the JSON response body.

        The response always echoes the resolved inputs (including which β
        was actually used for a ``ratio`` query), so cached or logged
        responses are self-describing.
        """
        out: Dict[str, Any] = {"query": self.query, "kernel": self.kernel, "n": self.n}
        if self.query == "agnostic_beta":
            assert self.p is not None  # parse() guarantees it
            out["p"] = self.p
            out["value"] = agnostic_beta(self.kernel, self.p, self.n)
            return out
        rel = self._relative_speeds()
        out["p"] = int(rel.shape[0])
        if self.query == "lower_bound":
            out["value"] = lower_bound(self.kernel, rel, self.n)
            return out
        optimal = (
            optimal_outer_beta(rel, self.n)
            if self.kernel == "outer"
            else optimal_matrix_beta(rel, self.n)
        )
        if self.query == "optimal_beta":
            out["value"] = float(optimal)
            return out
        beta = float(optimal) if self.beta is None else self.beta
        out["beta"] = beta
        ratio = (
            outer_total_ratio(beta, rel, self.n)
            if self.kernel == "outer"
            else matrix_total_ratio(beta, rel, self.n)
        )
        out["value"] = float(ratio)
        return out


def sweep_job_id(cells: List[CellSpec]) -> str:
    """Deterministic journal job id for one sweep's cell set.

    A fingerprint over the *sorted* cell fingerprints, so the id depends
    only on which cells the sweep covers — not their order, which service
    process accepted them, or when.  Any process holding the same journal
    can therefore answer ``GET /jobs/<id>`` for a sweep it never saw.
    """
    return fingerprint(
        {"schema": JOB_SCHEMA, "cells": sorted(c.fingerprint() for c in cells)}
    )
