"""The asyncio HTTP service in front of the result store.

A deliberately small HTTP/1.1 server on raw asyncio streams — stdlib only,
one request per connection, ``Connection: close`` — because the protocol
surface is a handful of JSON routes and the interesting machinery lives in
:mod:`repro.serve.queueing`:

========  ==================  ============================================
method    path                behavior
========  ==================  ============================================
GET       ``/healthz``        liveness + drain state + schema tag
GET       ``/metrics``        :mod:`repro.obs` snapshot + derived numbers
GET       ``/jobs/<id>``      sweep recovery: finished/pending cells
                              replayed from the journal + store — answers
                              for sweeps accepted by an earlier (possibly
                              killed) process over the same store
POST      ``/v1/analytical``  closed-form query, evaluated inline (the
                              fast path: never touches the simulation lane)
POST      ``/v1/cell``        one simulation cell through the lane
POST      ``/v1/sweep``       many cells; ``"stream": true`` upgrades the
                              response to SSE with per-cell progress
========  ==================  ============================================

Multiple service processes may point at one ``store_root``: every sweep's
cells are journaled ``accepted`` under a deterministic job id, and (unless
``claim_stale_after=0``) each cold cell is *claimed* before it is queued,
so concurrent processes coalesce cross-process instead of computing the
cell twice — see :mod:`repro.serve.queueing` and
:mod:`repro.store.claims`.

Status codes: 400 malformed spec, 404/405 unknown route, 413 oversized
body, 429 per-client quota exhausted, 503 queue full or draining.

**Graceful drain**: on SIGTERM/SIGINT the listener closes, in-flight cells
finish, open responses are given a grace period, the store executor and
the warm simulation process pool shut down, and the process exits 0 — so
a supervisor rolling the service never loses a computed-but-unwritten
cell.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.experiments.parallel import shutdown_pool
from repro.serve.protocol import (
    SERVE_SCHEMA,
    AnalyticalQuery,
    CellSpec,
    ProtocolError,
    sweep_job_id,
)
from repro.serve.queueing import AdmissionError, CellOutcome, SimulationLane
from repro.serve.quotas import QuotaRegistry
from repro.serve.telemetry import ServiceSink
from repro.store.cache import ResultStore
from repro.store.claims import ClaimRegistry
from repro.store.journal import Journal
from repro.utils.validation import check_nonnegative, check_positive, check_positive_int

__all__ = ["ServeConfig", "SweepService", "run_server"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServeConfig:
    """Everything one service instance needs, validated at the boundary."""

    __slots__ = (
        "host",
        "port",
        "store_root",
        "lane_workers",
        "max_queue",
        "batch_max",
        "cell_workers",
        "quota_rate",
        "quota_burst",
        "max_n",
        "max_reps",
        "max_p",
        "max_cells",
        "max_body",
        "executor_threads",
        "read_timeout",
        "drain_grace",
        "claim_stale_after",
        "claim_poll",
    )

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8321,
        store_root: str = "serve-cache",
        lane_workers: int = 2,
        max_queue: int = 64,
        batch_max: int = 8,
        cell_workers: int = 1,
        quota_rate: float = 20.0,
        quota_burst: float = 40.0,
        max_n: int = 512,
        max_reps: int = 256,
        max_p: int = 1024,
        max_cells: int = 256,
        max_body: int = 1 << 20,
        executor_threads: int = 4,
        read_timeout: float = 30.0,
        drain_grace: float = 5.0,
        claim_stale_after: float = 30.0,
        claim_poll: float = 0.05,
    ) -> None:
        self.host = str(host)
        if isinstance(port, bool) or not isinstance(port, int) or not 0 <= port <= 65535:
            raise ValueError(f"port must be an integer in [0, 65535], got {port!r}")
        self.port = port
        self.store_root = str(store_root)
        self.lane_workers = check_positive_int("lane_workers", lane_workers)
        self.max_queue = check_positive_int("max_queue", max_queue)
        self.batch_max = check_positive_int("batch_max", batch_max)
        self.cell_workers = check_positive_int("cell_workers", cell_workers)
        self.quota_rate = check_nonnegative("quota_rate", quota_rate)
        self.quota_burst = check_nonnegative("quota_burst", quota_burst)
        self.max_n = check_positive_int("max_n", max_n)
        self.max_reps = check_positive_int("max_reps", max_reps)
        self.max_p = check_positive_int("max_p", max_p)
        self.max_cells = check_positive_int("max_cells", max_cells)
        self.max_body = check_positive_int("max_body", max_body)
        self.executor_threads = check_positive_int("executor_threads", executor_threads)
        self.read_timeout = check_nonnegative("read_timeout", read_timeout)
        self.drain_grace = check_nonnegative("drain_grace", drain_grace)
        # 0 disables cross-process claims (single-instance deployments).
        self.claim_stale_after = check_nonnegative("claim_stale_after", claim_stale_after)
        self.claim_poll = check_positive("claim_poll", claim_poll)


class _HttpError(Exception):
    """Short-circuits a request with a status + JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class SweepService:
    """One service instance: store, quotas, claims, journal, lanes, HTTP front.

    ``clock`` is injectable for deterministic tests; when given it drives
    *both* the quota token buckets (normally ``time.monotonic``) and the
    claim heartbeats (normally ``time.time`` — wall time, because
    heartbeats must be comparable across processes).
    """

    def __init__(
        self, config: ServeConfig, *, clock: Optional[Callable[[], float]] = None
    ) -> None:
        self.config = config
        self.sink = ServiceSink()
        self.store = ResultStore(config.store_root, sink=self.sink)
        self.quotas = QuotaRegistry(
            config.quota_rate,
            config.quota_burst,
            clock=clock if clock is not None else time.monotonic,
        )
        self.journal = Journal(self.store, sink=self.sink)
        self.claims: Optional[ClaimRegistry] = None
        if config.claim_stale_after > 0:
            self.claims = ClaimRegistry(
                self.store,
                stale_after=config.claim_stale_after,
                clock=clock if clock is not None else time.time,
                sink=self.sink,
            )
        self._executor = ThreadPoolExecutor(
            max_workers=config.executor_threads, thread_name_prefix="repro-serve"
        )
        self.lane = SimulationLane(
            self.store,
            self.sink,
            self._executor,
            workers=config.lane_workers,
            max_queue=config.max_queue,
            batch_max=config.batch_max,
            cell_workers=config.cell_workers,
            claims=self.claims,
            journal=self.journal,
            claim_poll=config.claim_poll,
        )
        self._server: Optional["asyncio.Server"] = None
        self._draining = False
        self._stop = asyncio.Event()
        self._conn_tasks: Set["asyncio.Task[Any]"] = set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and spawn lane workers; returns (host, port)."""
        await self.lane.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return str(host), int(port)

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to drain and exit (signal-handler safe)."""
        self._stop.set()

    async def serve_forever(self, *, handle_signals: bool = True) -> None:
        """Serve until :meth:`request_stop` (or SIGTERM/SIGINT), then drain."""
        if handle_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover  # repro: noqa[R-SILENT]
                    # Platforms without loop signal support still stop via
                    # request_stop().
                    pass
        await self._stop.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, release pools."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.lane.drain()
        pending = {t for t in self._conn_tasks if not t.done()}
        if pending:
            await asyncio.wait(pending, timeout=self.config.drain_grace)
        self._executor.shutdown(wait=True)
        shutdown_pool()

    @property
    def draining(self) -> bool:
        """True once shutdown began; ``/healthz`` reports it."""
        return self._draining or self.lane.draining

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_one(reader, writer)
        except (ConnectionError, asyncio.TimeoutError, asyncio.IncompleteReadError):  # repro: noqa[R-SILENT]
            pass  # client went away; nobody left to answer
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover  # repro: noqa[R-SILENT]
                pass  # double-close on a socket the peer already tore down

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        start = time.monotonic()
        try:
            method, path, headers, body = await self._read_request(reader)
        except _HttpError as exc:
            self._write_json(writer, exc.status, {"error": exc.message})
            await writer.drain()
            return
        client = headers.get("x-repro-client", "anonymous")
        try:
            await self._dispatch(method, path, client, body, writer, start)
        except _HttpError as exc:
            self._write_json(writer, exc.status, {"error": exc.message})
        except ProtocolError as exc:
            self.sink.rejected("invalid")
            self._write_json(writer, 400, {"error": str(exc)})
        except AdmissionError as exc:
            self._write_json(writer, 503, {"error": str(exc), "reason": exc.reason})
        except Exception as exc:  # never leak a traceback as a hung socket
            self._write_json(writer, 500, {"error": f"{type(exc).__name__}: {exc}"})
        await writer.drain()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        timeout = self.config.read_timeout or None
        request_line = await asyncio.wait_for(reader.readline(), timeout)
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length {length_text!r}") from None
        if length < 0 or length > self.config.max_body:
            raise _HttpError(413, f"body exceeds {self.config.max_body} bytes")
        body = await asyncio.wait_for(reader.readexactly(length), timeout) if length else b""
        return method, path, headers, body

    def _write_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    @staticmethod
    def _parse_body(body: bytes) -> Dict[str, Any]:
        try:
            parsed = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(parsed, dict):
            raise _HttpError(400, "body must be a JSON object")
        return parsed

    def _check_quota(self, client: str, lane: str, cost: float = 1.0) -> None:
        if not self.quotas.allow(client, lane, cost):
            self.sink.rejected("quota")
            raise _HttpError(429, f"quota exhausted for client {client!r} on lane {lane!r}")

    # -- routing ------------------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        path: str,
        client: str,
        body: bytes,
        writer: asyncio.StreamWriter,
        start: float,
    ) -> None:
        if path == "/healthz" and method == "GET":
            self._write_json(
                writer,
                200,
                {"status": "draining" if self.draining else "ok", "schema": SERVE_SCHEMA},
            )
            return
        if path == "/metrics" and method == "GET":
            self._write_json(writer, 200, self.metrics_payload())
            return
        if path == "/v1/analytical" and method == "POST":
            await self._route_analytical(client, body, writer, start)
            return
        if path == "/v1/cell" and method == "POST":
            await self._route_cell(client, body, writer)
            return
        if path == "/v1/sweep" and method == "POST":
            await self._route_sweep(client, body, writer)
            return
        if path.startswith("/jobs/"):
            if method != "GET":
                raise _HttpError(405, f"method {method} not allowed on {path}")
            await self._route_job(path[len("/jobs/") :], writer)
            return
        if path in ("/healthz", "/metrics", "/v1/analytical", "/v1/cell", "/v1/sweep"):
            raise _HttpError(405, f"method {method} not allowed on {path}")
        raise _HttpError(404, f"unknown path {path}")

    async def _route_job(self, job_id: str, writer: asyncio.StreamWriter) -> None:
        """``GET /jobs/<id>``: sweep status replayed from journal + store.

        Deliberately independent of any in-memory state, so a fresh
        process answers for jobs accepted before a crash or restart.
        """
        if not job_id:
            raise _HttpError(404, "missing job id")
        status = await asyncio.get_running_loop().run_in_executor(
            self._executor, partial(self.journal.job_status, job_id, store=self.store)
        )
        if status is None:
            raise _HttpError(404, f"unknown job {job_id}")
        self._write_json(writer, 200, status)

    async def _route_analytical(
        self, client: str, body: bytes, writer: asyncio.StreamWriter, start: float
    ) -> None:
        if self.draining:
            raise AdmissionError("draining", "service is draining; retry elsewhere")
        self._check_quota(client, "analytical")
        query = AnalyticalQuery.parse(self._parse_body(body), max_p=self.config.max_p)
        self.sink.request("analytical")
        result = query.evaluate()
        self.sink.observe_latency("analytical", time.monotonic() - start)
        self._write_json(writer, 200, result)

    async def _route_cell(
        self, client: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        self._check_quota(client, "simulation")
        cell = self._parse_cell(self._parse_body(body))
        self.sink.request("simulation")
        outcome = await self.lane.submit(cell)
        self._write_json(writer, 200, outcome.payload())

    def _parse_cell(self, raw: Dict[str, Any]) -> CellSpec:
        cfg = self.config
        return CellSpec.parse(raw, max_n=cfg.max_n, max_reps=cfg.max_reps, max_p=cfg.max_p)

    async def _route_sweep(
        self, client: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        parsed = self._parse_body(body)
        raw_cells = parsed.get("cells")
        if not isinstance(raw_cells, list) or not raw_cells:
            raise ProtocolError("sweep needs a non-empty 'cells' list")
        if len(raw_cells) > self.config.max_cells:
            raise ProtocolError(
                f"sweep exceeds the {self.config.max_cells}-cell limit"
            )
        stream = bool(parsed.get("stream", False))
        self._check_quota(client, "simulation", cost=float(len(raw_cells)))
        cells = [self._parse_cell(raw) for raw in raw_cells]
        self.sink.request("simulation")
        job_id = await self._journal_accepted(cells)
        if stream:
            await self._stream_sweep(cells, job_id, writer)
        else:
            results = await asyncio.gather(
                *(self._submit_safe(cell) for cell in cells)
            )
            self._write_json(
                writer,
                200,
                {"cells": results, "counts": _status_counts(results), "job": job_id},
            )

    async def _journal_accepted(self, cells: List[CellSpec]) -> str:
        """Journal every sweep cell ``accepted`` under a deterministic job id.

        The id depends only on the cell set, so re-submitting the same
        sweep (to this process or any peer on the same store) maps onto
        the same recoverable job.
        """
        job_id = sweep_job_id(cells)
        fingerprints = sorted({cell.fingerprint() for cell in cells})
        owner = None if self.claims is None else self.claims.owner
        await asyncio.get_running_loop().run_in_executor(
            self._executor,
            partial(
                self.journal.append_many,
                "accepted",
                fingerprints,
                job=job_id,
                owner=owner,
            ),
        )
        return job_id

    async def _submit_safe(self, cell: CellSpec) -> Dict[str, Any]:
        """One sweep cell's payload; admission failures become row entries."""
        try:
            outcome = await self.lane.submit(cell)
        except AdmissionError as exc:
            return {
                "fingerprint": cell.fingerprint(),
                "status": "rejected",
                "summary": None,
                "error": str(exc),
                "reason": exc.reason,
            }
        return outcome.payload()

    async def _stream_sweep(
        self, cells: List[CellSpec], job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        """SSE: one ``cell`` event per finished cell, then ``done``."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        _write_sse(writer, "accepted", {"cells": len(cells), "job": job_id})
        await writer.drain()

        async def indexed(i: int, cell: CellSpec) -> Tuple[int, Dict[str, Any]]:
            return i, await self._submit_safe(cell)

        tasks = [
            asyncio.ensure_future(indexed(i, cell)) for i, cell in enumerate(cells)
        ]
        results: List[Optional[Dict[str, Any]]] = [None] * len(cells)
        for finished in asyncio.as_completed(tasks):
            index, payload = await finished
            results[index] = payload
            _write_sse(writer, "cell", {"index": index, **payload})
            await writer.drain()
        done = [r for r in results if r is not None]
        _write_sse(writer, "done", {"counts": _status_counts(done)})
        await writer.drain()

    # -- metrics ------------------------------------------------------------

    def metrics_payload(self) -> Dict[str, Any]:
        """The ``/metrics`` body: raw obs snapshot plus derived numbers."""
        counts = self.store.counts
        return {
            "metrics": self.sink.snapshot(),
            "derived": {
                "hit_rate": self.sink.hit_rate(),
                "queue_depth": self.lane.queue_depth,
                "in_flight": self.lane.in_flight,
                "coalesced": self.sink.counter_value("serve_coalesced", "simulation"),
                "latency": self.sink.latency_quantiles(),
                "store": {
                    "hits": counts.hits,
                    "misses": counts.misses,
                    "puts": counts.puts,
                    "corrupt": counts.corrupt,
                },
                "claims": None if self.claims is None else dict(self.claims.counts),
            },
            "draining": self.draining,
        }


def _status_counts(rows: List[Dict[str, Any]]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for row in rows:
        status = str(row.get("status"))
        counts[status] = counts.get(status, 0) + 1
    return counts


def _write_sse(writer: asyncio.StreamWriter, event: str, data: Dict[str, Any]) -> None:
    payload = json.dumps(data, sort_keys=True)
    writer.write(f"event: {event}\ndata: {payload}\n\n".encode("utf-8"))


def run_server(config: ServeConfig) -> int:
    """Boot a service, print the bound address, serve until SIGTERM/SIGINT.

    The ``repro-serve`` CLI entry point's body.  Prints
    ``listening on http://host:port`` once ready (machine-parsable — the
    smoke harness and tests scrape it, and ``port=0`` binds an ephemeral
    port) and ``drained cleanly`` after a graceful shutdown; returns the
    process exit code.
    """

    async def _amain() -> None:
        service = SweepService(config)
        host, port = await service.start()
        print(f"repro-serve: listening on http://{host}:{port}", flush=True)
        await service.serve_forever()

    asyncio.run(_amain())
    print("repro-serve: drained cleanly", flush=True)
    return 0
