"""Shared utilities: seeded RNG handling, argument validation, statistics.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` builds on them.
"""

from repro.utils.rng import as_generator, spawn_rngs, spawn_seed_sequences
from repro.utils.stats import RunningStats, Summary, summarize
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_speeds,
)

__all__ = [
    "as_generator",
    "spawn_rngs",
    "spawn_seed_sequences",
    "RunningStats",
    "Summary",
    "summarize",
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "check_speeds",
]
