"""Streaming statistics used to aggregate repeated simulation runs.

The paper reports, for every figure point, the mean over >= 10 simulations
and notes that the standard deviation is always small (< 0.1).  The
experiment runner therefore needs numerically stable mean/variance
accumulation; :class:`RunningStats` implements Welford's online algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = ["RunningStats", "Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Immutable snapshot of a sample: count, mean, std, min, max."""

    n: int
    mean: float
    std: float
    min: float
    max: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"n={self.n} mean={self.mean:.4g} std={self.std:.3g} " f"range=[{self.min:.4g}, {self.max:.4g}]"


class RunningStats:
    """Welford online mean/variance accumulator.

    >>> rs = RunningStats()
    >>> for v in (1.0, 2.0, 3.0):
    ...     rs.add(v)
    >>> rs.mean
    2.0
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot accumulate NaN")
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold an iterable of observations into the accumulator."""
        for v in values:
            self.add(v)

    @property
    def n(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (ddof=1) variance; zero for a single observation."""
        if self._n == 0:
            raise ValueError("no observations")
        if self._n == 1:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def max(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._max

    def summary(self) -> Summary:
        """Snapshot the current state as an immutable :class:`Summary`."""
        return Summary(n=self.n, mean=self.mean, std=self.std, min=self.min, max=self.max)


def summarize(values: Iterable[float]) -> Summary:
    """One-shot summary of an iterable of observations."""
    rs = RunningStats()
    rs.extend(values)
    return rs.summary()
