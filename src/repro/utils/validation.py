"""Argument validation helpers with consistent error messages.

The simulator is driven by user-provided sizes, speeds and fractions; these
checks turn silent misuse (negative speeds, empty platforms, out-of-range
thresholds) into immediate, descriptive :class:`ValueError`/
:class:`TypeError` exceptions.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive",
    "check_nonnegative",
    "check_fraction",
    "check_probability",
    "check_speeds",
]


def check_positive_int(name: str, value: object) -> int:
    """Validate that *value* is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_positive(name: str, value: object) -> float:
    """Validate that *value* is a positive finite real and return it as ``float``."""
    try:
        value = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number") from exc
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be positive and finite, got {value}")
    return value


def check_nonnegative_int(name: str, value: object) -> int:
    """Validate that *value* is an integer ``>= 0`` and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_nonnegative(name: str, value: object) -> float:
    """Validate that *value* is a finite real ``>= 0`` and return it as ``float``."""
    try:
        value = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number") from exc
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be >= 0 and finite, got {value}")
    return value


def check_fraction(name: str, value: object, *, inclusive: bool = True) -> float:
    """Validate that *value* lies in ``[0, 1]`` (or ``(0, 1)`` if not inclusive)."""
    try:
        value = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number") from exc
    if inclusive:
        ok = 0.0 <= value <= 1.0
    else:
        ok = 0.0 < value < 1.0
    if not np.isfinite(value) or not ok:
        bounds = "[0, 1]" if inclusive else "(0, 1)"
        raise ValueError(f"{name} must lie in {bounds}, got {value}")
    return value


def check_probability(name: str, value: object) -> float:
    """Validate that *value* is a probability in ``[0, 1]``.

    Alias of :func:`check_fraction` with inclusive bounds, named for call
    sites where the quantity semantically *is* a probability (acceptance
    ratios, phase-switch thresholds) rather than a generic fraction.
    """
    return check_fraction(name, value, inclusive=True)


def check_speeds(speeds: object) -> np.ndarray:
    """Validate a vector of processor speeds.

    Returns a 1-D ``float64`` copy.  Speeds must be finite, strictly positive
    and non-empty: the paper's demand-driven model breaks down for a
    zero-speed processor (it would never request work) and for an empty
    platform (no one to do the work).
    """
    arr = np.asarray(speeds, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"speeds must be a 1-D array, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("speeds must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError("speeds must be finite")
    if np.any(arr <= 0):
        raise ValueError("speeds must be strictly positive")
    return arr.copy()
