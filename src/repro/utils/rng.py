"""Random-number-generator plumbing.

All randomized code in :mod:`repro` takes a :class:`numpy.random.Generator`
(or a seed convertible to one) so that every simulation, experiment and test
is reproducible.  Independent streams for repeated experiments are derived
with :func:`spawn_rngs`, which uses NumPy's ``SeedSequence.spawn`` so streams
are statistically independent rather than consecutively seeded.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

__all__ = ["as_generator", "spawn_rngs", "spawn_seed_sequences", "SeedLike"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged, so callers can thread one RNG through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: SeedLike, n: int) -> List[np.random.SeedSequence]:
    """Derive *n* independent child :class:`~numpy.random.SeedSequence`\\ s.

    The resolved children fully determine the streams of
    :func:`spawn_rngs` — ``as_generator(child)`` reproduces exactly the
    generator that ``spawn_rngs(seed, n)[i]`` would return.  Seed sequences
    (unlike generators) are cheap to pickle, so the parallel replicate
    runner ships these to worker processes and rebuilds identical streams
    there, guaranteeing bit-identical results to the serial path.
    """
    if isinstance(n, bool) or not isinstance(n, (int, np.integer)):
        raise TypeError(f"n must be an integer, got {type(n).__name__}")
    n = int(n)
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs (got {n})")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's own stream.
        return np.random.SeedSequence(seed.integers(0, 2**63)).spawn(n)
    if isinstance(seed, np.random.SeedSequence):
        return seed.spawn(n)
    return np.random.SeedSequence(seed).spawn(n)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive *n* independent generators from a single seed.

    Used by the experiment runner to give each repetition of a simulation its
    own stream while remaining reproducible from one top-level seed.
    Returns a concrete ``list`` so callers can index, slice and ``len()`` it.
    """
    return [np.random.default_rng(c) for c in spawn_seed_sequences(seed, n)]
