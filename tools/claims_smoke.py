#!/usr/bin/env python
"""Two-process kill/steal smoke test for the claim & journal layer, used by CI.

The scenario the cross-process layer exists for, end to end with real
processes and a real SIGKILL:

1. a **reference** run computes one figure single-process (no cache) and
   writes its CSV;
2. a **holder** subprocess claims the first cell of the same figure's grid
   over a shared store, journals ``claimed``, and parks — then is
   SIGKILLed mid-cell, exactly like a worker dying on a cluster node;
3. two **survivor** subprocesses run
   ``repro-experiments run --workers-external`` against the shared store;
   the dead worker's claim goes stale, one survivor steals the cell, and
   between them they drain the whole grid;
4. the harness asserts both survivors exited 0, at least one steal
   happened, the journal holds **exactly one** ``computed`` record per
   cell (no duplicate engine work), and every worker's CSV is
   byte-identical to the reference.

Run it from the repo root::

    python tools/claims_smoke.py

``hold`` mode (used internally, and by the crash-recovery integration
test) runs step 2 only::

    python tools/claims_smoke.py hold <store-root> --figure fig01 --scale ci
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import List, Optional

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.experiments.external import external_job_id, plan_figure_cells  # noqa: E402
from repro.store.cache import ResultStore  # noqa: E402
from repro.store.claims import ClaimRegistry  # noqa: E402
from repro.store.journal import Journal  # noqa: E402

_RUN_SHIM = "import sys; from repro.experiments.cli import main; sys.exit(main(sys.argv[1:]))"


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(ROOT, "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env["PYTHONUNBUFFERED"] = "1"
    return env


def hold(root: str, figure: str, scale: str, seed: int) -> int:
    """Claim the figure's first grid cell, journal it, park until killed.

    Prints ``holding <fingerprint>`` once the claim is on disk (the parent
    synchronizes on that line), heartbeats so the claim stays live while
    this process lives, and sleeps forever — the only way out is a signal,
    which is the point.
    """
    store = ResultStore(root)
    plan = plan_figure_cells(figure, scale=scale, seed=seed)
    fingerprints = sorted(c.fingerprint for c in plan if c.fingerprint is not None)
    if not fingerprints:
        raise SystemExit(f"figure {figure} planned no cacheable cells")
    fp = fingerprints[0]
    claims = ClaimRegistry(store, stale_after=30.0)
    if not claims.try_claim(fp):
        raise SystemExit(f"could not claim {fp}: already claimed?")
    job = external_job_id(figure, scale=scale, seed=seed)
    Journal(store).append("claimed", fp, job=job, owner=claims.owner)
    with claims.ticker([fp]):
        print(f"holding {fp}", flush=True)
        while True:  # parked mid-cell; SIGKILL is the expected exit
            time.sleep(60.0)


def _run_worker(figure: str, scale: str, cache: str, outdir: str, stale: float) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-c",
            _RUN_SHIM,
            "run",
            figure,
            "--scale",
            scale,
            "--quiet",
            "--cache",
            cache,
            "--outdir",
            outdir,
            "--workers-external",
            "--claim-stale-after",
            str(stale),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )


def scenario(figure: str, scale: str, stale: float) -> int:
    """The full kill/steal scenario; returns a process exit code."""
    seed = 0
    base = tempfile.mkdtemp(prefix="repro-claims-smoke-")
    cache = os.path.join(base, "cache")
    ref_out = os.path.join(base, "ref")
    outs = [os.path.join(base, "worker-a"), os.path.join(base, "worker-b")]

    ref = subprocess.run(
        [sys.executable, "-c", _RUN_SHIM, "run", figure, "--scale", scale,
         "--quiet", "--outdir", ref_out],
        capture_output=True,
        text=True,
        env=_env(),
    )
    if ref.returncode != 0:
        raise SystemExit(f"reference run failed: {ref.stdout}{ref.stderr}")
    print(f"claims-smoke: reference {figure}/{scale} written", flush=True)

    holder = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "hold", cache,
         "--figure", figure, "--scale", scale],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )
    assert holder.stdout is not None
    line = holder.stdout.readline()
    if not line.startswith("holding "):
        holder.kill()
        raise SystemExit(f"holder never claimed a cell, got {line!r}")
    held_fp = line.split()[1]
    holder.send_signal(signal.SIGKILL)
    holder.wait()
    print(f"claims-smoke: holder SIGKILLed mid-cell (claim on {held_fp[:12]}...)", flush=True)

    workers = [_run_worker(figure, scale, cache, out, stale) for out in outs]
    outputs = [w.communicate(timeout=600)[0] for w in workers]
    for worker, output in zip(workers, outputs):
        if worker.returncode != 0:
            raise SystemExit(f"worker failed ({worker.returncode}): {output}")
    stolen = sum(int(line.split(",")[-1].split()[0])
                 for output in outputs
                 for line in output.splitlines()
                 if line.strip().endswith("stolen]"))
    if stolen < 1:
        raise SystemExit(f"no survivor stole the dead worker's cell: {outputs}")
    print(f"claims-smoke: survivors drained the grid, {stolen} steal(s)", flush=True)

    store = ResultStore(cache)
    replay = Journal(store).replay()
    computed: dict = {}
    for record in replay.records:
        if record.state == "computed":
            computed[record.cell] = computed.get(record.cell, 0) + 1
    duplicates = {fp: n for fp, n in computed.items() if n > 1}
    if duplicates:
        raise SystemExit(f"cells computed more than once: {duplicates}")
    if replay.corrupt:
        raise SystemExit(f"{replay.corrupt} corrupt journal records after clean runs")
    job = external_job_id(figure, scale=scale, seed=seed)
    status = Journal(store).job_status(job, store=store) if job else None
    if not status or not status["done"] or status["pending"]:
        raise SystemExit(f"journal job status not drained: {status}")
    print(
        f"claims-smoke: journal clean — {len(computed)} cells computed exactly once, "
        f"job {job[:12]}... done",
        flush=True,
    )

    csv_name = f"{figure}_{scale}.csv"
    with open(os.path.join(ref_out, csv_name), "rb") as fh:
        expected = fh.read()
    for out in outs:
        with open(os.path.join(out, csv_name), "rb") as fh:
            if fh.read() != expected:
                raise SystemExit(f"{out}/{csv_name} differs from the reference CSV")
    print("claims-smoke: every worker CSV byte-identical to the reference", flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="mode")
    holder = sub.add_parser("hold", help="claim one cell and park until killed")
    holder.add_argument("root", help="shared store root")
    holder.add_argument("--figure", default="fig01")
    holder.add_argument("--scale", default="ci")
    holder.add_argument("--seed", type=int, default=0)
    parser.add_argument("--figure", default="fig01")
    parser.add_argument("--scale", default="ci")
    parser.add_argument("--stale-after", type=float, default=2.0)
    args = parser.parse_args(argv)
    if args.mode == "hold":
        return hold(args.root, args.figure, args.scale, args.seed)
    return scenario(args.figure, args.scale, args.stale_after)


if __name__ == "__main__":
    sys.exit(main())
