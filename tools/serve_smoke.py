#!/usr/bin/env python
"""End-to-end smoke test for the ``repro-serve`` service, used by CI.

Boots the real server as a subprocess (``python -m repro.serve --port 0``
with a throwaway store), scrapes the bound port from the ``listening on``
line, then checks the service contract from outside the process:

1. ``/healthz`` answers ``ok``;
2. an analytical query returns the closed-form value;
3. a tiny simulation cell computes on first POST and is a byte-identical
   cache **hit** on the second, with ``/metrics`` showing a nonzero hit
   rate and latency quantiles;
4. SIGTERM drains cleanly: exit code 0 and the ``drained cleanly`` line.

Run it from the repo root::

    python tools/serve_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.serve.client import ServeClient, wait_until_healthy  # noqa: E402

_LISTEN = re.compile(r"listening on http://([\d.]+):(\d+)")


def main() -> int:
    store = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(ROOT, "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0", "--store", store],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    assert proc.stdout is not None
    try:
        line = proc.stdout.readline()
        match = _LISTEN.search(line)
        if not match:
            raise SystemExit(f"no listening line from server, got {line!r}")
        host, port = match.group(1), int(match.group(2))
        health = wait_until_healthy(host, port, timeout=15.0)
        assert health["status"] == "ok", health
        print(f"serve-smoke: healthy at {host}:{port}")

        client = ServeClient(host, port, client_id="smoke")

        analytical = client.analytical(
            {"query": "ratio", "kernel": "outer", "n": 64, "speeds": [1.0, 2.0, 3.0], "beta": 2.0}
        )
        assert analytical["value"] > 0, analytical
        print(f"serve-smoke: analytical ratio = {analytical['value']:.4f}")

        spec = {
            "strategy": "DynamicOuter",
            "n": 12,
            "reps": 2,
            "seed": 3,
            "platform": {"type": "uniform", "p": 4},
        }
        cold = client.cell(spec)
        assert cold["status"] == "computed", cold
        warm = client.cell(spec)
        assert warm["status"] == "hit", warm
        assert warm["summary"] == cold["summary"], "cache hit must be byte-identical"
        print("serve-smoke: cold miss computed, warm hit identical")

        metrics = client.metrics()
        derived = metrics["derived"]
        assert derived["hit_rate"] is not None and derived["hit_rate"] > 0, derived
        assert derived["latency"]["simulation"]["p50"] is not None, derived
        print(f"serve-smoke: hit rate {derived['hit_rate']:.2f}")

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0, f"exit code {proc.returncode}: {out}"
        assert "drained cleanly" in out, out
        print("serve-smoke: SIGTERM drained cleanly")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
