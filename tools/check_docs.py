#!/usr/bin/env python
"""Documentation consistency gate: links resolve, dotted paths import.

Checks, over every tracked markdown file:

* every relative link target (``[text](path)`` and ``[text](path#anchor)``)
  exists on disk, relative to the file containing the link;
* every ``repro.something`` dotted path mentioned in prose or inline code
  imports — docs must not reference modules or attributes that were renamed
  or never existed.

External links (``http(s)://``, ``mailto:``) are not fetched; this gate is
offline and deterministic.  Files whose content is quoted external material
(paper abstracts, snippet collections) are skipped.

Usage::

    python tools/check_docs.py            # check the repo the script lives in
    python tools/check_docs.py --root DIR # check another checkout
"""

from __future__ import annotations

import argparse
import importlib
import os
import re
import sys
from typing import Iterator, List, Tuple

#: Markdown files quoting external material — not this repo's own docs.
SKIP_BASENAMES = frozenset({"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"})

#: ``[text](target)`` — excluding images; target split from any #anchor.
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")

#: Dotted ``repro.x.y`` paths as whole words; trailing ``/`` means a file
#: path (``src/repro.egg-info/``-style), not a module, and is skipped below.
_DOTTED = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

#: Things that look dotted but are file names, not import paths.
_FILE_SUFFIXES = (".md", ".py", ".json", ".csv", ".svg", ".toml", ".txt")


def markdown_files(root: str) -> List[str]:
    """All checked markdown files: top level plus ``docs/``."""
    found: List[str] = []
    for directory in (root, os.path.join(root, "docs")):
        if not os.path.isdir(directory):
            continue
        for name in sorted(os.listdir(directory)):
            if name.endswith(".md") and name not in SKIP_BASENAMES:
                found.append(os.path.join(directory, name))
    return found


def iter_links(text: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every markdown link in *text*."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def check_links(path: str, text: str) -> List[str]:
    """Broken relative-link messages for one file."""
    problems: List[str] = []
    base = os.path.dirname(path)
    for lineno, target in iter_links(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not os.path.exists(os.path.join(base, relative)):
            problems.append(f"{path}:{lineno}: broken link target {target!r}")
    return problems


def _importable(dotted: str) -> bool:
    """Whether *dotted* resolves to a module or a module attribute."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        obj = module
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_dotted_paths(path: str, text: str) -> List[str]:
    """Phantom ``repro.*`` reference messages for one file."""
    problems: List[str] = []
    seen = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _DOTTED.finditer(line):
            dotted = match.group(0)
            head = line[match.start() - 1:match.start()]
            tail = line[match.end():match.end() + 1]
            if head == "/" or tail in ("/", "-") or dotted.endswith(_FILE_SUFFIXES):
                continue  # a path like src/repro.egg-info/, not an import
            if dotted in seen:
                continue
            seen.add(dotted)
            if not _importable(dotted):
                problems.append(
                    f"{path}:{lineno}: {dotted!r} does not import "
                    "(renamed module or phantom attribute?)"
                )
    return problems


def main(argv: "List[str] | None" = None) -> int:
    """Run the docs gate; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root, help="repo checkout to check")
    args = parser.parse_args(argv)

    sys.path.insert(0, os.path.join(args.root, "src"))
    files = markdown_files(args.root)
    if not files:
        print(f"check_docs: no markdown files under {args.root}", file=sys.stderr)
        return 1
    problems: List[str] = []
    for path in files:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        problems.extend(check_links(path, text))
        problems.extend(check_dotted_paths(path, text))
    for problem in problems:
        print(problem)
    if problems:
        print(f"check_docs: {len(problems)} problem(s) in {len(files)} files")
        return 1
    print(f"check_docs: {len(files)} markdown files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
