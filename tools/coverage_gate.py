#!/usr/bin/env python
"""Dependency-free line-coverage gate over the tier-1 test suite.

CI measures coverage with ``pytest --cov`` (coverage.py); this tool exists
so the same floor can be checked locally without installing anything: it
traces the suite with :func:`sys.settrace`, counts executable lines from
the compiled code objects' ``co_lines()`` tables, and compares the covered
percentage against the ``fail_under`` floor recorded in ``pyproject.toml``
(single source of truth for both gates).

Usage::

    python tools/coverage_gate.py                 # run suite, enforce floor
    python tools/coverage_gate.py --report        # also print per-file table
    python tools/coverage_gate.py --fail-under 0  # measure only
    python tools/coverage_gate.py tests/obs       # gate a subset (no floor)

Line accounting is slightly more conservative than coverage.py's: it has
no ``exclude_lines`` pragmas, so ``# pragma: no cover`` blocks count as
uncovered here while coverage.py excludes them.  The recorded floor is
therefore safe for CI (coverage.py reports a percentage at least as high
as this tool does).
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from types import CodeType, FrameType
from typing import Any, Dict, Iterator, Optional, Set, Tuple

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
PACKAGE_DIR = os.path.join(SRC, "repro")


def iter_source_files(package_dir: str = PACKAGE_DIR) -> Iterator[str]:
    """Absolute paths of every ``.py`` file under the package, sorted."""
    for dirpath, dirnames, filenames in os.walk(package_dir):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def executable_lines(path: str) -> Set[int]:
    """Line numbers with executable code, from the compiled line tables.

    Walks the module's code object and every nested code object (functions,
    classes, comprehensions) collecting the lines ``co_lines()`` maps
    instructions to — the same universe a line tracer can ever report.
    """
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    lines: Set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _start, _end, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if isinstance(const, CodeType):
                stack.append(const)
    return lines


class LineCollector:
    """A :func:`sys.settrace` hook recording line hits for watched files."""

    def __init__(self, watched: Set[str]) -> None:
        self.watched = watched
        self.hits: Dict[str, Set[int]] = {path: set() for path in watched}

    def _local(self, frame: FrameType, event: str, arg: Any) -> Any:
        if event == "line":
            hits = self.hits.get(frame.f_code.co_filename)
            if hits is not None:
                hits.add(frame.f_lineno)
        return self._local

    def global_trace(self, frame: FrameType, event: str, arg: Any) -> Any:
        if frame.f_code.co_filename in self.watched:
            return self._local(frame, event, arg)
        return None  # don't pay per-line overhead outside the package

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def read_floor(pyproject_path: Optional[str] = None) -> float:
    """The ``fail_under`` floor recorded in ``[tool.coverage.report]``."""
    import tomllib

    path = pyproject_path or os.path.join(ROOT, "pyproject.toml")
    with open(path, "rb") as fh:
        config = tomllib.load(fh)
    return float(config["tool"]["coverage"]["report"]["fail_under"])


def run_suite(pytest_args: Tuple[str, ...]) -> Tuple[int, Dict[str, Set[int]]]:
    """Run pytest in-process under the collector; returns (exit, hits)."""
    import pytest

    if SRC not in sys.path:
        sys.path.insert(0, SRC)
    # Subprocess-based tests (examples, tool scripts) import repro too.
    existing = os.environ.get("PYTHONPATH", "")
    if SRC not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    watched = set(iter_source_files())
    collector = LineCollector(watched)
    collector.install()
    try:
        exit_code = int(pytest.main(["-q", "-p", "no:cacheprovider", *pytest_args]))
    finally:
        collector.uninstall()
    return exit_code, collector.hits


def summarize(
    hits: Dict[str, Set[int]], *, report: bool = False
) -> Tuple[int, int, float]:
    """Total (covered, executable, percent); optionally print per-file rows."""
    total_exec = 0
    total_hit = 0
    rows = []
    for path in sorted(hits):
        lines = executable_lines(path)
        covered = len(lines & hits[path])
        total_exec += len(lines)
        total_hit += covered
        if report:
            pct = 100.0 * covered / len(lines) if lines else 100.0
            rows.append((os.path.relpath(path, ROOT), len(lines), covered, pct))
    percent = 100.0 * total_hit / total_exec if total_exec else 100.0
    if report:
        width = max(len(r[0]) for r in rows)
        print(f"{'file':<{width}}  lines  covered    %")
        for name, n_lines, covered, pct in rows:
            print(f"{name:<{width}}  {n_lines:5d}  {covered:7d}  {pct:5.1f}")
        print()
    return total_hit, total_exec, percent


def main(argv: Optional[Tuple[str, ...]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure line coverage of src/repro over the test suite "
        "without coverage.py and enforce the pyproject fail_under floor."
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=None,
        metavar="PCT",
        help="floor to enforce (default: [tool.coverage.report] fail_under; "
        "0 disables the gate)",
    )
    parser.add_argument(
        "--report", action="store_true", help="print a per-file coverage table"
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        default=[],
        help="extra arguments forwarded to pytest (e.g. a test subset; "
        "passing any disables the floor unless --fail-under is given)",
    )
    args = parser.parse_args(argv)

    if sys.version_info < (3, 11):  # co_lines() needs 3.10, tomllib 3.11
        print("coverage_gate: requires Python >= 3.11 (use CI's pytest --cov on older)")
        return 2

    floor = args.fail_under
    if floor is None:
        floor = 0.0 if args.pytest_args else read_floor()

    exit_code, hits = run_suite(tuple(args.pytest_args))
    if exit_code != 0:
        print(f"coverage_gate: test suite failed (pytest exit {exit_code})")
        return exit_code

    covered, executable, percent = summarize(hits, report=args.report)
    print(
        f"coverage_gate: {covered}/{executable} executable lines covered "
        f"({percent:.2f}%), floor {floor:.2f}%"
    )
    if percent < floor:
        print("coverage_gate: FAILED — coverage fell below the recorded floor")
        return 1
    print("coverage_gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
