#!/usr/bin/env bash
# One-shot local gate: tier-1 tests, the invariant linter, the whole-program
# analyzer, the docs gate, the cross-process claims smoke, and (when
# installed) the strict typing gate — the same jobs CI runs.
#
#   ./tools/run_checks.sh
#
# Exits non-zero on the first failing check.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

failures=0

run() {
    echo
    echo "== $*"
    if "$@"; then
        echo "-- ok"
    else
        echo "-- FAILED: $*"
        failures=$((failures + 1))
    fi
}

run python -m pytest -x -q
run python -m repro.lint src/repro
run python -m repro.analyze check --baseline tools/analyze_baseline.json src/repro
run python tools/check_docs.py
run python tools/claims_smoke.py

if python -c "import mypy" >/dev/null 2>&1; then
    run python -m mypy --strict src/repro
else
    echo
    echo "== mypy --strict src/repro"
    echo "-- skipped (mypy not installed; pip install -e .[dev])"
fi

echo
if [ "$failures" -ne 0 ]; then
    echo "run_checks: $failures check(s) failed"
    exit 1
fi
echo "run_checks: all checks passed"
